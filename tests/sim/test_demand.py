"""Tests for the population-scale demand generator (repro.sim.demand)."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.demand import (
    ChurnModel,
    ClientTemplate,
    DemandScenario,
    DiurnalArrivals,
    FlashCrowd,
    PoissonArrivals,
    SESSION_SEED_STRIDE,
    run_population,
)
from repro.sim.fleet import RenderFleet
from repro.sim.runner import BatchEngine
from repro.sim.session import Join, Leave, ProfileSwitch


def _payload(**overrides):
    payload = {
        "name": "test-town",
        "horizon_ms": 400_000,
        "arrivals": {"process": "poisson", "rate_per_min": 3.0},
        "party_sizes": {"1": 0.4, "2": 0.4, "3": 0.2},
        "duration_frames": {"min": 8, "max": 12},
        "clients": [
            {"app": "GRID", "share": 2.0},
            {"app": "UT3", "share": 1.0, "weight": 2.0},
        ],
        "profiles": {"default": 3.0, "lte": 1.0},
        "churn": {"late_join": 0.3, "leave": 0.25, "switch": 0.2},
        "fleet": {"servers": {"east": 3, "west": 3}, "placement": "least-loaded"},
        "policies": ["fair-share", "deadline"],
        "slo": {"p99_fps_floor": 45.0},
    }
    payload.update(overrides)
    return payload


def _scenario(**overrides):
    return DemandScenario.from_payload(_payload(**overrides))


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------


class TestArrivals:
    def test_poisson_rate_is_flat(self):
        p = PoissonArrivals(rate_per_min=6.0)
        assert p.rate_at(0.0) == p.rate_at(1e6) == pytest.approx(1e-4)
        assert p.peak_rate() == pytest.approx(1e-4)

    def test_diurnal_peaks_at_peak_ms_and_troughs_opposite(self):
        d = DiurnalArrivals(
            rate_per_min=6.0, period_ms=1000.0, amplitude=0.5, peak_ms=250.0
        )
        assert d.rate_at(250.0) == pytest.approx(d.peak_rate())
        assert d.rate_at(750.0) == pytest.approx(1e-4 * 0.5)
        assert d.peak_rate() == pytest.approx(1e-4 * 1.5)

    def test_diurnal_mean_rate_matches_homogeneous(self):
        d = DiurnalArrivals(rate_per_min=6.0, period_ms=1000.0, amplitude=0.9)
        ts = np.linspace(0.0, 1000.0, 10_001)[:-1]
        assert np.mean([d.rate_at(t) for t in ts]) == pytest.approx(1e-4, rel=1e-3)

    def test_flash_crowd_window_half_open(self):
        crowd = FlashCrowd(start_ms=100.0, duration_ms=50.0, multiplier=4.0)
        assert not crowd.active_at(99.9)
        assert crowd.active_at(100.0)
        assert crowd.active_at(149.9)
        assert not crowd.active_at(150.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_per_min": 0.0},
            {"rate_per_min": -1.0},
            {"rate_per_min": float("nan")},
        ],
    )
    def test_bad_rates_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(**kwargs)

    def test_bad_diurnal_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(rate_per_min=1.0, amplitude=1.0)
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(rate_per_min=1.0, period_ms=0.0)

    def test_bad_flash_crowds_rejected(self):
        with pytest.raises(ConfigurationError):
            FlashCrowd(start_ms=-1.0, duration_ms=10.0, multiplier=2.0)
        with pytest.raises(ConfigurationError):
            FlashCrowd(start_ms=0.0, duration_ms=0.0, multiplier=2.0)
        with pytest.raises(ConfigurationError):
            FlashCrowd(start_ms=0.0, duration_ms=10.0, multiplier=0.0)

    def test_flash_crowd_multiplies_arrivals(self):
        base = _scenario(flash_crowds=[])
        crowded = _scenario(
            flash_crowds=[
                {"start_ms": 0.0, "duration_ms": 400_000.0, "multiplier": 5.0}
            ]
        )
        rng = np.random.Generator(np.random.PCG64(3))
        n_base = len(base.sample_arrivals(rng))
        rng = np.random.Generator(np.random.PCG64(3))
        n_crowded = len(crowded.sample_arrivals(rng))
        assert n_crowded > 2 * n_base

    def test_diurnal_arrivals_follow_the_curve(self):
        sc = _scenario(
            horizon_ms=2_000_000,
            arrivals={
                "process": "diurnal",
                "rate_per_min": 30.0,
                "period_ms": 2_000_000.0,
                "amplitude": 0.95,
                "peak_ms": 500_000.0,
            },
        )
        rng = np.random.Generator(np.random.PCG64(11))
        arrivals = sc.sample_arrivals(rng)
        near_peak = sum(1 for t in arrivals if abs(t - 500_000.0) < 250_000.0)
        near_trough = sum(1 for t in arrivals if abs(t - 1_500_000.0) < 250_000.0)
        assert near_peak > 3 * near_trough


# ---------------------------------------------------------------------------
# Scenario construction and validation
# ---------------------------------------------------------------------------


class TestScenarioSchema:
    def test_from_payload_round_trip(self):
        sc = _scenario()
        assert sc.name == "test-town"
        assert sc.policies == ("fair-share", "deadline")
        assert sc.frames_min == 8 and sc.frames_max == 12
        assert isinstance(sc.fleet, RenderFleet)
        assert len(sc.profiles) == 2
        assert sc.profiles[0][0] is None  # "default" entry

    def test_from_json(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(_payload()))
        assert DemandScenario.from_json(str(path)) == _scenario()

    def test_from_json_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            DemandScenario.from_json(str(tmp_path / "nope.json"))

    def test_from_json_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            DemandScenario.from_json(str(path))

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario keys"):
            DemandScenario.from_payload(_payload(bogus=1))

    def test_missing_required_key_rejected(self):
        payload = _payload()
        del payload["fleet"]
        with pytest.raises(ConfigurationError, match='missing "fleet"'):
            DemandScenario.from_payload(payload)

    def test_unknown_arrival_process_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown arrival process"):
            _scenario(arrivals={"process": "weibull", "rate_per_min": 1.0})

    def test_unknown_arrival_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown poisson arrival"):
            _scenario(
                arrivals={"process": "poisson", "rate_per_min": 1.0, "phase": 2}
            )

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown app"):
            ClientTemplate(app="NotAGame")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scheduling policy"):
            _scenario(policies=["fair-share", "magic"])

    def test_duplicate_policies_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate policies"):
            _scenario(policies=["fair-share", "fair-share"])

    def test_bad_party_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            _scenario(party_sizes={"0": 1.0})
        with pytest.raises(ConfigurationError):
            _scenario(party_sizes={"2": -1.0})

    def test_bad_frame_bounds_rejected(self):
        with pytest.raises(ConfigurationError, match="frames_min"):
            _scenario(duration_frames={"min": 12, "max": 8})

    def test_bad_churn_rejected(self):
        with pytest.raises(ConfigurationError, match="churn probability"):
            ChurnModel(late_join=1.5)

    def test_switch_without_targets_rejected(self):
        with pytest.raises(ConfigurationError, match="non-default profile"):
            _scenario(profiles={"default": 1.0})

    def test_bad_slo_floor_rejected(self):
        with pytest.raises(ConfigurationError, match="floor"):
            _scenario(slo={"p99_fps_floor": 0.0})


# ---------------------------------------------------------------------------
# Deterministic expansion
# ---------------------------------------------------------------------------


class TestExpansion:
    def test_same_seed_identical_sessions(self):
        sc = _scenario()
        assert sc.expand(seed=7) == sc.expand(seed=7)

    def test_different_seeds_distinct_arrivals(self):
        sc = _scenario()
        a, b = sc.expand(seed=7), sc.expand(seed=8)
        assert [p.arrival_ms for p in a] != [p.arrival_ms for p in b]

    def test_capped_expansion_is_a_prefix(self):
        sc = _scenario()
        full = sc.expand(seed=7)
        assert sc.expand(seed=7, max_sessions=5) == full[:5]

    def test_bad_max_sessions_rejected(self):
        with pytest.raises(ConfigurationError, match="max_sessions"):
            _scenario().expand(seed=7, max_sessions=0)

    def test_session_seeds_stride(self):
        planned = _scenario().expand(seed=7)
        assert [p.seed for p in planned[:3]] == [
            7 + SESSION_SEED_STRIDE,
            7 + 2 * SESSION_SEED_STRIDE,
            7 + 3 * SESSION_SEED_STRIDE,
        ]

    def test_expanded_sessions_are_valid_and_within_bounds(self):
        sc = _scenario()
        planned = sc.expand(seed=7)
        assert len(planned) > 10
        churn_events = 0
        for p in planned:
            assert 0.0 <= p.arrival_ms < sc.horizon_ms
            assert sc.frames_min <= p.n_frames <= sc.frames_max
            assert p.session.fleet is sc.fleet
            assert p.session.policy == sc.policies[0]
            churn_events += len(p.session.events)
            # every event type the churn model can emit plans cleanly
            p.session.timeline(system=sc.system, n_frames=p.n_frames, seed=p.seed)
        assert churn_events > 0

    def test_churn_emits_all_event_kinds(self):
        planned = _scenario(horizon_ms=2_000_000).expand(seed=7)
        kinds = {
            type(e) for p in planned for e in p.session.events
        }
        assert kinds == {Join, Leave, ProfileSwitch}

    def test_zero_churn_emits_no_events(self):
        planned = _scenario(
            churn={"late_join": 0.0, "leave": 0.0, "switch": 0.0}
        ).expand(seed=7)
        assert all(not p.session.events for p in planned)


# ---------------------------------------------------------------------------
# Streaming execution
# ---------------------------------------------------------------------------


class TestRunPopulation:
    @pytest.fixture(scope="class")
    def scenario(self):
        return DemandScenario.from_payload(_payload(horizon_ms=120_000))

    @pytest.fixture(scope="class")
    def serial_report(self, scenario):
        return run_population(scenario, seed=7, engine=BatchEngine())

    def test_report_shape(self, scenario, serial_report):
        report = serial_report
        assert report["scenario"] == "test-town"
        assert report["seed"] == 7
        assert set(report["policies"]) == {"fair-share", "deadline"}
        for r in report["policies"].values():
            assert r["executed"] == r["client_sessions"] > 0
            slo = r["slo"]
            assert slo["met"] + 0 <= slo["measured"]
            assert slo["measured"] + slo["unmeasured"] == r["executed"]
            assert 0.0 <= slo["attainment"] <= 1.0
            assert r["latency_ms"]["count"] > 0
            assert r["fps"]["count"] > 0

    def test_rerun_bit_identical(self, scenario, serial_report):
        again = run_population(scenario, seed=7, engine=BatchEngine())
        assert json.dumps(again, sort_keys=True) == json.dumps(
            serial_report, sort_keys=True
        )

    @pytest.mark.parametrize("shards", [1, 4, 16])
    def test_sharded_report_bit_identical(self, scenario, serial_report, shards):
        engine = BatchEngine(shards=shards, shard_mode="process")
        report = run_population(scenario, seed=7, engine=engine)
        assert json.dumps(report, sort_keys=True) == json.dumps(
            serial_report, sort_keys=True
        )

    def test_different_seed_different_report(self, scenario, serial_report):
        other = run_population(scenario, seed=8, engine=BatchEngine())
        assert json.dumps(other, sort_keys=True) != json.dumps(
            serial_report, sort_keys=True
        )

    def test_policy_restriction(self, scenario):
        report = run_population(
            scenario, seed=7, engine=BatchEngine(), policies=("deadline",)
        )
        assert set(report["policies"]) == {"deadline"}

    def test_unknown_policy_restriction_rejected(self, scenario):
        with pytest.raises(ConfigurationError, match="not in the scenario"):
            run_population(scenario, seed=7, policies=("weighted",))

    def test_max_sessions_caps_the_city(self, scenario):
        report = run_population(
            scenario, seed=7, engine=BatchEngine(), max_sessions=3
        )
        assert report["sessions"] == 3

    def test_progress_callback_reaches_total(self, scenario):
        seen = []
        run_population(
            scenario,
            seed=7,
            engine=BatchEngine(),
            policies=("fair-share",),
            max_sessions=3,
            progress=lambda policy, done, total: seen.append((policy, done, total)),
        )
        assert seen[-1][0] == "fair-share"
        assert seen[-1][1] == seen[-1][2] > 0

    def test_stream_dir_gets_per_policy_subdirs(self, scenario, tmp_path):
        import os

        engine = BatchEngine(
            shards=2, shard_mode="process", stream_dir=str(tmp_path)
        )
        run_population(scenario, seed=7, engine=engine, max_sessions=3)
        assert sorted(os.listdir(tmp_path)) == ["deadline", "fair-share"]
        assert engine.stream_dir == str(tmp_path)  # restored after the run
