"""Tests for the sharded work-stealing executor and its result stream.

Bit-identity is asserted through ``pickle.dumps`` equality (dataclass
``==`` is false-negative on NaN fields); the determinism contract under
test is that any shard count, worker count, execution mode, crash, or
resume produces byte-identical results to a flat serial run.
"""

import os
import pickle
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.sim.runner import BatchEngine, RunSpec, Sweep, run, spec_key
from repro.sim import shard as shard_module
from repro.sim.shard import (
    _DELAY_ENV,
    _plan_digest,
    ResultStream,
    Shard,
    ShardedExecutor,
    plan_shards,
)

SRC = Path(__file__).resolve().parents[2] / "src"


def _sweep_specs(seeds=(0, 1, 2)) -> list[RunSpec]:
    return Sweep(
        systems=("local", "remote", "static"),
        apps=("Doom3-L", "GRID"),
        seeds=seeds,
        n_frames=25,
        warmup_frames=5,
    ).specs()


def _reference(specs) -> dict[str, bytes]:
    return {spec_key(spec): pickle.dumps(run(spec)) for spec in specs}


def _collect(executor: ShardedExecutor, specs) -> dict[str, bytes]:
    try:
        return {
            spec_key(spec): pickle.dumps(result)
            for spec, result in executor.execute(specs)
        }
    finally:
        executor.cleanup()


class TestPlanShards:
    def test_contiguous_and_balanced(self):
        specs = _sweep_specs()
        planned = plan_shards(specs, 4)
        assert len(planned) == 4
        sizes = [len(s) for s in planned]
        assert max(sizes) - min(sizes) <= 1
        flattened = [spec for s in planned for spec in s.specs]
        assert flattened == list(specs)
        assert [s.index for s in planned] == [0, 1, 2, 3]

    def test_more_shards_than_specs_degrades_to_singletons(self):
        specs = _sweep_specs(seeds=(0,))[:3]
        planned = plan_shards(specs, 99)
        assert len(planned) == 3
        assert all(len(s) == 1 for s in planned)

    def test_empty_specs_plan_nothing(self):
        assert plan_shards([], 8) == ()

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_shards(_sweep_specs(), 0)


class TestBitParityAcrossShards:
    def test_inline_parity_at_every_shard_count(self):
        specs = _sweep_specs()
        reference = _reference(specs)
        for shards in (1, 4, 16):
            executor = ShardedExecutor(shards=shards, mode="inline")
            assert _collect(executor, specs) == reference

    def test_process_pool_parity_with_stealing(self):
        specs = _sweep_specs()
        reference = _reference(specs)
        executor = ShardedExecutor(shards=7, workers=2, mode="process")
        assert _collect(executor, specs) == reference
        assert executor.stats.workers == 2
        assert executor.stats.executed == len(specs)

    def test_subprocess_parity(self, tmp_path):
        specs = _sweep_specs(seeds=(0,))
        reference = _reference(specs)
        executor = ShardedExecutor(
            shards=3, workers=2, mode="subprocess", stream_dir=tmp_path
        )
        assert _collect(executor, specs) == reference
        assert executor.stats.inline_fallback == 0
        owners = {
            index: (tmp_path / f"shard-{index:04d}.owner").read_text().strip()
            for index in range(3)
        }
        assert all(owner.startswith("worker-") for owner in owners.values())

    def test_single_spec_sweep(self):
        specs = _sweep_specs(seeds=(0,))[:1]
        reference = _reference(specs)
        executor = ShardedExecutor(shards=8, workers=4, mode="process")
        assert _collect(executor, specs) == reference
        assert executor.stats.shards == 1

    def test_empty_sweep_yields_nothing(self):
        executor = ShardedExecutor(shards=4, mode="inline")
        assert _collect(executor, []) == {}
        assert executor.stats.shards == 0


class TestExecutorValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedExecutor(mode="cluster")

    def test_nonpositive_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedExecutor(shards=0)

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedExecutor(workers=0)

    def test_nonpositive_heartbeat_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedExecutor(heartbeat_s=0.0)


class TestResultStream:
    def test_manifest_binds_stream_to_one_plan(self, tmp_path):
        specs = _sweep_specs(seeds=(0,))
        executor = ShardedExecutor(shards=2, mode="inline", stream_dir=tmp_path)
        _collect(executor, specs)
        other = _sweep_specs(seeds=(1,))
        stale = ShardedExecutor(shards=2, mode="inline", stream_dir=tmp_path)
        with pytest.raises(ConfigurationError):
            list(stale.execute(other))

    def test_torn_tail_is_discarded(self, tmp_path):
        specs = _sweep_specs(seeds=(0,))[:2]
        stream = ResultStream(tmp_path)
        path = stream.results_path(0)
        with path.open("wb") as handle:
            pickle.dump((specs[0], run(specs[0])), handle)
            handle.write(b"\x80torn-frame-garbage")
        frames = list(stream.iter_shard(0))
        assert len(frames) == 1
        assert pickle.dumps(frames[0][1]) == pickle.dumps(run(specs[0]))

    def test_len_counts_completed_frames(self, tmp_path):
        specs = _sweep_specs(seeds=(0,))
        executor = ShardedExecutor(shards=3, mode="inline", stream_dir=tmp_path)
        _collect(executor, specs)
        assert len(ResultStream(tmp_path)) == len(specs)


class TestResume:
    def test_completed_stream_is_not_reexecuted(self, tmp_path):
        specs = _sweep_specs(seeds=(0,))
        first = ShardedExecutor(shards=3, mode="inline", stream_dir=tmp_path)
        reference = _collect(first, specs)
        second = ShardedExecutor(shards=3, mode="inline", stream_dir=tmp_path)
        assert _collect(second, specs) == reference
        assert second.stats.executed == 0
        assert second.stats.skipped_shards == 3

    def test_interrupt_then_resume_is_bit_identical(self, tmp_path, monkeypatch):
        specs = _sweep_specs(seeds=(0,))
        reference = _reference(specs)
        real_run = shard_module.run
        calls = []

        def interrupted(spec):
            if len(calls) == 2:
                raise KeyboardInterrupt
            calls.append(spec)
            return real_run(spec)

        monkeypatch.setattr(shard_module, "run", interrupted)
        first = ShardedExecutor(shards=1, mode="inline", stream_dir=tmp_path)
        with pytest.raises(KeyboardInterrupt):
            list(first.execute(specs))
        monkeypatch.setattr(shard_module, "run", real_run)

        stream = ResultStream(tmp_path)
        assert stream.part_path(0).exists()
        assert not stream.is_complete(0)
        # A crash can also tear the tail of the spill file mid-write; the
        # salvage scan must drop exactly the torn frame and keep the prefix.
        with stream.part_path(0).open("ab") as handle:
            handle.write(b"\x80torn")

        second = ShardedExecutor(shards=1, mode="inline", stream_dir=tmp_path)
        assert _collect(second, specs) == reference
        assert second.stats.salvaged == 2
        assert second.stats.executed == len(specs) - 2


class TestSubprocessFaults:
    def _spool(self, tmp_path, specs, shards):
        planned = plan_shards(specs, shards)
        stream = ResultStream(tmp_path)
        stream.write_manifest(planned, _plan_digest(specs, len(planned)))
        stream.write_shard_specs(planned)
        return stream, planned

    def test_killed_worker_mid_shard_is_requeued_and_stolen(self, tmp_path):
        specs = _sweep_specs(seeds=(0, 1))
        reference = _reference(specs)
        stream, planned = self._spool(tmp_path, specs, 2)
        trace_dir = tmp_path / "trace"

        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        env[_DELAY_ENV] = "300"
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.sim.shard",
                "--spool",
                str(tmp_path),
                "--worker-id",
                "0",
                "--workers",
                "1",
                "--trace",
                str(trace_dir),
            ],
            env=env,
        )
        part = stream.part_path(0)
        deadline = time.monotonic() + 60
        try:
            while time.monotonic() < deadline:
                if part.exists() and part.stat().st_size > 0:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("worker never flushed a frame to the spill file")
        finally:
            proc.kill()
            proc.wait()

        # The dead worker leaves its claim behind; the next run must
        # release it, salvage the flushed prefix, and finish elsewhere.
        assert stream.claim_path(0).exists()
        executor = ShardedExecutor(
            shards=2, workers=2, mode="subprocess", stream_dir=tmp_path
        )
        assert _collect(executor, specs) == reference
        assert executor.stats.requeues >= 1
        assert executor.stats.salvaged >= 1
        owner = stream.owner_path(0).read_text().strip()
        assert owner in {"worker-0", "worker-1", "parent"}

        # The SIGKILLed worker's per-process trace stream still merges:
        # the salvage read keeps the valid prefix (claim instant, any
        # completed spans) and drops at most a torn final line.
        from repro.obs import sinks as obs_sinks
        from repro.obs import trace as obs_trace

        events, _ = obs_sinks.merge_trace_dir(trace_dir)
        assert events, "dead worker left no mergeable trace events"
        assert {e["proc"] for e in events} == {"worker-0"}
        names = {e["name"] for e in events}
        assert "shard.claim" in names and "shard.execute" in names
        # Span pairing tolerates any begin the kill left unmatched.
        for begin, end in obs_trace.spans(events):
            assert end["ts_s"] >= begin["ts_s"]

    def test_parent_finishes_when_every_worker_exits(self, tmp_path):
        specs = _sweep_specs(seeds=(0,))
        reference = _reference(specs)
        stream, planned = self._spool(tmp_path, specs, 2)
        # Claims held by a live process (this test) with fresh heartbeats
        # are unstealable: the workers find nothing claimable and exit,
        # and the parent must then complete the sweep inline itself.
        for shard in planned:
            path = stream.claim_path(shard.index)
            path.write_text('{"pid": %d, "worker": 99}' % os.getpid())
        executor = ShardedExecutor(
            shards=2, workers=2, mode="subprocess", stream_dir=tmp_path
        )
        assert _collect(executor, specs) == reference
        assert executor.stats.inline_fallback == 2
        for shard in planned:
            assert stream.owner_path(shard.index).read_text().strip() == "parent"

    def test_stale_claim_from_dead_pid_is_released(self, tmp_path):
        specs = _sweep_specs(seeds=(0,))
        reference = _reference(specs)
        stream, planned = self._spool(tmp_path, specs, 3)
        # PID 2**22 + 1 exceeds every default pid_max on Linux: certainly dead.
        stream.claim_path(1).write_text('{"pid": 4194305, "worker": 7}')
        executor = ShardedExecutor(
            shards=3, workers=2, mode="subprocess", stream_dir=tmp_path
        )
        assert _collect(executor, specs) == reference
        assert executor.stats.requeues >= 1


class TestBatchEngineIntegration:
    def test_sharded_engine_matches_flat_engine(self):
        specs = _sweep_specs(seeds=(0,))
        flat = BatchEngine(jobs=1)
        reference = {
            spec_key(s): pickle.dumps(r) for s, r in flat.run_specs(specs).items()
        }
        for shards in (1, 4, 16):
            engine = BatchEngine(jobs=2, shards=shards, shard_mode="process")
            got = {
                spec_key(s): pickle.dumps(r) for s, r in engine.run_specs(specs).items()
            }
            assert got == reference
            assert engine.last_shard_stats is not None
            assert engine.last_shard_stats.specs == len(specs)

    def test_stream_specs_is_bit_identical_and_unmemoized(self):
        specs = _sweep_specs(seeds=(0,))
        flat = BatchEngine(jobs=1)
        reference = {
            spec_key(s): pickle.dumps(r) for s, r in flat.run_specs(specs).items()
        }
        engine = BatchEngine(jobs=1, shards=4, shard_mode="inline")
        got = {
            spec_key(s): pickle.dumps(r) for s, r in engine.stream_specs(specs)
        }
        assert got == reference
        # The streaming path must not retain results in process memory.
        assert engine._memo == {}

    def test_stream_specs_replays_from_cache(self, tmp_path):
        specs = _sweep_specs(seeds=(0,))
        first = BatchEngine(jobs=1, cache_dir=tmp_path)
        reference = {
            spec_key(s): pickle.dumps(r) for s, r in first.stream_specs(specs)
        }
        second = BatchEngine(jobs=1, cache_dir=tmp_path, shards=2)
        got = {
            spec_key(s): pickle.dumps(r) for s, r in second.stream_specs(specs)
        }
        assert got == reference
        assert second.stats.cache_hits == len(specs)
        assert second.stats.executed == 0

    def test_engine_validates_shard_options(self):
        with pytest.raises(ConfigurationError):
            BatchEngine(shards=0)
        with pytest.raises(ConfigurationError):
            BatchEngine(shards=2, shard_mode="cluster")

    def test_resumable_stream_dir_through_engine(self, tmp_path):
        specs = _sweep_specs(seeds=(0,))
        first = BatchEngine(shards=3, shard_mode="inline", stream_dir=tmp_path)
        reference = {
            spec_key(s): pickle.dumps(r) for s, r in first.run_specs(specs).items()
        }
        second = BatchEngine(shards=3, shard_mode="inline", stream_dir=tmp_path)
        got = {
            spec_key(s): pickle.dumps(r) for s, r in second.run_specs(specs).items()
        }
        assert got == reference
        assert second.last_shard_stats.executed == 0
        assert second.last_shard_stats.skipped_shards == 3
