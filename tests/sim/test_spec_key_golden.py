"""Golden snapshot of :func:`repro.sim.runner.spec_key`.

``spec_key`` is the content hash behind the result cache and the batch
run packs: every published artefact is addressed by it.  This module
pins the exact sha256 hex digests for a canonical matrix of specs so
that *any* drift — a new hashed field, a changed default, a
canonicalisation tweak, a version bump — fails loudly here instead of
silently orphaning cached results.

The key deliberately mixes in ``_SPEC_SCHEMA_VERSION`` and the package
``__version__``, so these digests are expected to change on a release or
schema bump.  When that happens (and ONLY then — an unexplained diff is
a determinism bug), regenerate the table with::

    PYTHONPATH=src python tests/sim/test_spec_key_golden.py

which prints the current matrix in copy-pasteable form.  HASH001 in
``repro-lint.toml`` guards the companion invariant: no RunSpec /
PlatformConfig / NetworkConditions field may be added without deciding
whether it is hashed (baseline), legacy-stripped (``_NEUTRAL_FIELDS``)
or execution-only (``_EXECUTION_FIELDS``).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.network.conditions import LTE_4G
from repro.sim.runner import RunSpec, spec_key
from repro.sim.systems import PlatformConfig


def _matrix() -> dict[str, RunSpec]:
    """The canonical spec matrix, in a stable label -> spec mapping."""
    base = RunSpec(system="qvr", app="GRID")
    return {
        "qvr-grid-default": base,
        "local-doom3h": RunSpec(system="local", app="Doom3-H"),
        "remote-lte": RunSpec(
            system="remote",
            app="Doom3-L",
            platform=PlatformConfig(network=LTE_4G),
        ),
        "qvr-seed7-frames120": replace(base, seed=7, n_frames=120),
        "qvr-shared4": replace(
            base,
            shared_clients=4,
            sharing_efficiency=0.8,
            shared_downlink=False,
        ),
        "qvr-chunks4": replace(base, platform=PlatformConfig(stream_chunks=4)),
        "swqvr-warmup0": RunSpec(system="sw-qvr", app="UT3", warmup_frames=0),
    }


#: Pinned digests.  Do not edit by hand — see the module docstring.
GOLDEN: dict[str, str] = {
    "local-doom3h": "7d3bab924fb6618be0f84e87ee6705c4e931ec9ff4acde96e560a9620168a598",
    "qvr-chunks4": "a37901244fe080f6d40896c21d5ca4df89a2445d40c18c65d853bf37bc7cef11",
    "qvr-grid-default": "85f0b5831502e52c523945418f1a48f7476244d2d564ef4b1231c3dd9ae47135",
    "qvr-seed7-frames120": "94c4abcb917a7e7efa41257eb48f39c22414508ec635860b6397d7e9deecc42d",
    "qvr-shared4": "22da3f081bfb5f61334c8a5ba4c9e9300aa0dfbc57fe215712c0ad1a2499860f",
    "remote-lte": "0793ff50e2dfe40e48ad532b41c87f88f4d532d299c72cfc91eda22a66359e99",
    "swqvr-warmup0": "0bd04595970d1b09e23ed0fc0fa12e650d37699bc23202fae60a89a2ce96d8a0",
}


@pytest.mark.parametrize("label", sorted(GOLDEN))
def test_spec_key_matches_golden(label: str) -> None:
    spec = _matrix()[label]
    assert spec_key(spec) == GOLDEN[label], (
        f"spec_key drifted for {label!r}.  If this PR bumped __version__ or "
        "_SPEC_SCHEMA_VERSION this is expected — regenerate with "
        "`PYTHONPATH=src python tests/sim/test_spec_key_golden.py`.  "
        "Otherwise the cache-key contract broke: find the change before "
        "touching this table."
    )


def test_matrix_and_golden_cover_same_labels() -> None:
    assert set(_matrix()) == set(GOLDEN)


def test_execution_fields_do_not_move_the_key() -> None:
    """Engine choice is execution-only: both engines share one cache key."""
    base = _matrix()["qvr-grid-default"]
    assert spec_key(replace(base, engine="scalar")) == GOLDEN["qvr-grid-default"]


def test_neutral_valued_fields_do_not_move_the_key() -> None:
    """Post-freeze fields at their neutral value are stripped, so specs
    that never touch the new features keep their published keys — while
    a *non*-neutral value must move the key, because it changes results.
    """
    base = _matrix()["qvr-grid-default"]
    explicit_neutral = replace(
        base,
        policy="fair-share",
        server_allocation=None,
        downlink_allocation=None,
        start_ms=0.0,
    )
    assert spec_key(explicit_neutral) == GOLDEN["qvr-grid-default"]
    assert spec_key(replace(base, policy="deadline")) != GOLDEN["qvr-grid-default"]
    assert spec_key(replace(base, start_ms=500.0)) != GOLDEN["qvr-grid-default"]


def test_hashed_fields_do_move_the_key() -> None:
    base = _matrix()["qvr-grid-default"]
    assert spec_key(replace(base, seed=1)) != GOLDEN["qvr-grid-default"]
    assert spec_key(replace(base, n_frames=301)) != GOLDEN["qvr-grid-default"]


if __name__ == "__main__":
    for name, spec in sorted(_matrix().items()):
        print(f'    "{name}": "{spec_key(spec)}",')
