"""Tests for the task-graph discrete-event scheduler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchedulingError
from repro.sim.scheduler import Task, TaskGraphScheduler


def make_scheduler(**caps):
    capacities = {"cpu": 1, "gpu": 1, "net": 1}
    capacities.update(caps)
    return TaskGraphScheduler(capacities)


class TestBasicScheduling:
    def test_single_task(self):
        sched = make_scheduler()
        task = sched.submit("a", 5.0, "cpu")
        sched.run()
        assert task.start_ms == 0.0
        assert task.finish() == 5.0

    def test_dependency_ordering(self):
        sched = make_scheduler()
        a = sched.submit("a", 5.0, "cpu")
        b = sched.submit("b", 3.0, "gpu", deps=(a,))
        sched.run()
        assert b.start_ms == pytest.approx(5.0)
        assert b.finish() == pytest.approx(8.0)

    def test_resource_serialisation(self):
        sched = make_scheduler()
        a = sched.submit("a", 5.0, "gpu")
        b = sched.submit("b", 5.0, "gpu")
        sched.run()
        assert {a.start_ms, b.start_ms} == {0.0, 5.0}

    def test_independent_resources_parallel(self):
        sched = make_scheduler()
        a = sched.submit("a", 5.0, "cpu")
        b = sched.submit("b", 5.0, "gpu")
        sched.run()
        assert a.start_ms == 0.0 and b.start_ms == 0.0

    def test_pure_delay_task(self):
        sched = make_scheduler()
        a = sched.submit("a", 2.0, "cpu")
        delay = sched.submit("delay", 10.0, None, deps=(a,))
        b = sched.submit("b", 1.0, "cpu", deps=(delay,))
        sched.run()
        assert b.start_ms == pytest.approx(12.0)

    def test_pure_delays_do_not_contend(self):
        sched = make_scheduler()
        d1 = sched.submit("d1", 10.0, None)
        d2 = sched.submit("d2", 10.0, None)
        sched.run()
        assert d1.start_ms == d2.start_ms == 0.0

    def test_earliest_start_respected(self):
        sched = make_scheduler()
        a = sched.submit("a", 1.0, "cpu", earliest_start_ms=7.0)
        sched.run()
        assert a.start_ms == pytest.approx(7.0)

    def test_multi_unit_resource(self):
        sched = make_scheduler(gpu=2)
        a = sched.submit("a", 5.0, "gpu")
        b = sched.submit("b", 5.0, "gpu")
        c = sched.submit("c", 5.0, "gpu")
        sched.run()
        assert a.start_ms == 0.0 and b.start_ms == 0.0
        assert c.start_ms == pytest.approx(5.0)


class TestFIFODispatch:
    def test_fifo_by_ready_time(self):
        sched = make_scheduler()
        early_dep = sched.submit("dep1", 1.0, "cpu")
        late_dep = sched.submit("dep2", 4.0, "cpu")
        first = sched.submit("first", 10.0, "gpu", deps=(early_dep,))
        second = sched.submit("second", 1.0, "gpu", deps=(late_dep,))
        sched.run()
        # `first` became ready earlier (t=1) so it holds the GPU first.
        assert first.start_ms < second.start_ms
        assert second.start_ms == pytest.approx(first.finish())

    def test_tie_break_by_submission_order(self):
        sched = make_scheduler()
        a = sched.submit("a", 2.0, "gpu")
        b = sched.submit("b", 2.0, "gpu")
        sched.run()
        assert a.start_ms == 0.0
        assert b.start_ms == pytest.approx(2.0)


class TestIncrementalRuns:
    def test_resources_persist_across_runs(self):
        sched = make_scheduler()
        sched.submit("a", 5.0, "gpu")
        sched.run()
        b = sched.submit("b", 1.0, "gpu")
        sched.run()
        assert b.start_ms == pytest.approx(5.0)

    def test_cross_batch_dependencies(self):
        sched = make_scheduler()
        a = sched.submit("a", 3.0, "cpu")
        sched.run()
        b = sched.submit("b", 1.0, "gpu", deps=(a,))
        sched.run()
        assert b.start_ms == pytest.approx(3.0)

    def test_busy_accounting(self):
        sched = make_scheduler()
        sched.submit("a", 3.0, "gpu")
        sched.submit("b", 4.0, "gpu")
        sched.run()
        assert sched.busy_ms("gpu") == pytest.approx(7.0)


class TestErrors:
    def test_unknown_resource(self):
        with pytest.raises(SchedulingError):
            make_scheduler().submit("a", 1.0, "tpu")

    def test_negative_duration(self):
        with pytest.raises(SchedulingError):
            make_scheduler().submit("a", -1.0, "cpu")

    def test_cycle_detection(self):
        sched = make_scheduler()
        a = Task("a", 1.0, "cpu")
        b = Task("b", 1.0, "cpu", deps=(a,))
        object.__setattr__ if False else setattr(a, "deps", (b,))
        sched._pending.extend([a, b])
        with pytest.raises(SchedulingError):
            sched.run()

    def test_unscheduled_finish_raises(self):
        task = Task("a", 1.0, "cpu")
        with pytest.raises(SchedulingError):
            task.finish()

    def test_busy_unknown_resource(self):
        with pytest.raises(SchedulingError):
            make_scheduler().busy_ms("tpu")


class TestZeroDurationTasks:
    def test_zero_duration_finishes_instantly(self):
        sched = make_scheduler()
        a = sched.submit("a", 0.0, "cpu")
        sched.run()
        assert a.start_ms == 0.0
        assert a.finish() == 0.0

    def test_zero_duration_does_not_hold_the_resource(self):
        sched = make_scheduler()
        sched.submit("a", 0.0, "gpu")
        b = sched.submit("b", 5.0, "gpu")
        sched.run()
        assert b.start_ms == 0.0
        assert sched.busy_ms("gpu") == pytest.approx(5.0)

    def test_zero_duration_chain_propagates_ready_time(self):
        sched = make_scheduler()
        work = sched.submit("work", 4.0, "cpu")
        marker1 = sched.submit("m1", 0.0, "gpu", deps=(work,))
        marker2 = sched.submit("m2", 0.0, "gpu", deps=(marker1,))
        after = sched.submit("after", 1.0, "gpu", deps=(marker2,))
        sched.run()
        assert marker1.start_ms == marker2.start_ms == pytest.approx(4.0)
        assert after.start_ms == pytest.approx(4.0)
        assert after.finish() == pytest.approx(5.0)

    def test_validate_accepts_zero_duration_at_full_capacity(self):
        """Instantaneous tasks at a saturated instant are not oversubscription."""
        sched = make_scheduler()
        sched.submit("busy", 5.0, "gpu")
        sched.submit("instant", 0.0, "gpu")
        sched.run()
        sched.validate()


class TestMultiUnitContention:
    def test_waves_fill_units_in_order(self):
        sched = make_scheduler(gpu=3)
        tasks = [sched.submit(f"t{i}", 4.0, "gpu") for i in range(7)]
        sched.run()
        starts = sorted(t.start_ms for t in tasks)
        assert starts == pytest.approx([0.0, 0.0, 0.0, 4.0, 4.0, 4.0, 8.0])
        sched.validate()

    def test_mixed_durations_reuse_earliest_free_unit(self):
        sched = make_scheduler(gpu=2)
        short = sched.submit("short", 1.0, "gpu")
        long = sched.submit("long", 10.0, "gpu")
        third = sched.submit("third", 2.0, "gpu")
        sched.run()
        # The third task lands on the unit the short task frees at t=1.
        assert short.start_ms == long.start_ms == 0.0
        assert third.start_ms == pytest.approx(1.0)
        sched.validate()

    def test_busy_accounting_sums_across_units(self):
        sched = make_scheduler(gpu=2)
        sched.submit("a", 3.0, "gpu")
        sched.submit("b", 4.0, "gpu")
        sched.run()
        assert sched.busy_ms("gpu") == pytest.approx(7.0)

    def test_capacity_must_be_positive(self):
        with pytest.raises(SchedulingError):
            TaskGraphScheduler({"gpu": 0})


class TestDependencyCycleErrors:
    def test_cycle_error_names_unscheduled_tasks(self):
        sched = make_scheduler()
        a = sched.submit("cyc-a", 1.0, "cpu")
        b = sched.submit("cyc-b", 1.0, "cpu", deps=(a,))
        a.deps = (b,)  # forge the back edge the submit API cannot express
        with pytest.raises(SchedulingError) as excinfo:
            sched.run()
        assert "cyc-a" in str(excinfo.value) or "cyc-b" in str(excinfo.value)

    def test_dangling_dependency_detected(self):
        """A dep that was never submitted can never schedule its dependent."""
        sched = make_scheduler()
        orphan_dep = Task("never-submitted", 1.0, "cpu")
        sched.submit("dependent", 1.0, "cpu", deps=(orphan_dep,))
        with pytest.raises(SchedulingError):
            sched.run()

    def test_partial_progress_still_schedules_acyclic_tasks(self):
        """The cycle error must not corrupt independently schedulable work."""
        sched = make_scheduler()
        ok = sched.submit("ok", 2.0, "cpu")
        a = sched.submit("a", 1.0, "gpu")
        b = sched.submit("b", 1.0, "gpu", deps=(a,))
        a.deps = (b,)
        with pytest.raises(SchedulingError):
            sched.run()
        assert ok.scheduled
        assert not a.scheduled and not b.scheduled


class TestValidation:
    def test_validate_passes_on_good_schedule(self):
        sched = make_scheduler()
        a = sched.submit("a", 2.0, "cpu")
        sched.submit("b", 2.0, "gpu", deps=(a,))
        sched.run()
        sched.validate()

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["cpu", "gpu", "net", None]),
                st.floats(min_value=0.0, max_value=10.0),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_random_graphs_satisfy_invariants(self, spec):
        """Random DAGs: dependencies, earliest starts and capacities hold."""
        sched = make_scheduler()
        tasks = []
        for i, (resource, duration, n_deps) in enumerate(spec):
            deps = tuple(tasks[max(0, i - n_deps) : i])
            tasks.append(sched.submit(f"t{i}", duration, resource, deps=deps))
        sched.run()
        sched.validate()
        for task in tasks:
            for dep in task.deps:
                assert task.start_ms >= dep.finish() - 1e-9
