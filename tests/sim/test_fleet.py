"""Tests for the elastic render fleet (repro.sim.fleet)."""

import pickle

import pytest

from repro import constants
from repro.errors import ConfigurationError
from repro.gpu.config import RemoteServerConfig
from repro.network.profile import ShareSchedule
from repro.sim.fleet import (
    FirstFitPlacement,
    LeastLoadedPlacement,
    PLACEMENT_NAMES,
    RenderFleet,
    STALL_SHARE,
    ServerDown,
    ServerFail,
    ServerUp,
    StickyPlacement,
    placement_by_name,
)
from repro.sim.metrics import ServerWindow, aggregate_server_stats
from repro.sim.multiuser import ClientSpec
from repro.sim.runner import BatchEngine, spec_key
from repro.sim.server import RenderServer
from repro.sim.session import Join, Leave, Session, simulate_session


def _duration(n_frames):
    return n_frames * constants.FRAME_BUDGET_MS


def _fleet(migration="migrate", placement="least-loaded", **kwargs):
    return RenderFleet.from_capacities(
        {"a": 2.0, "b": 1.0}, placement=placement, migration=migration, **kwargs
    )


class TestFleetValidation:
    def test_needs_at_least_one_server(self):
        with pytest.raises(ConfigurationError):
            RenderFleet(servers=())

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            RenderFleet(servers=(("a", RenderServer()), ("a", RenderServer())))

    def test_accepts_a_mapping(self):
        fleet = RenderFleet(servers={"a": RenderServer(), "b": RenderServer()})
        assert fleet.names == ("a", "b")
        assert fleet.total_capacity == 2 * RenderServer().capacity

    def test_heterogeneous_hardware_rejected(self):
        other = RemoteServerConfig(num_gpus=32)
        with pytest.raises(ConfigurationError):
            RenderFleet(
                servers=(
                    ("a", RenderServer()),
                    ("b", RenderServer(config=other)),
                )
            )

    def test_capacities_may_differ(self):
        fleet = RenderFleet.from_capacities({"a": 2.0, "b": 0.5})
        assert fleet.server("b").capacity == 0.5

    def test_unknown_placement_and_modes_rejected(self):
        with pytest.raises(ConfigurationError):
            RenderFleet.from_capacities({"a": 1.0}, placement="round-robin")
        with pytest.raises(ConfigurationError):
            RenderFleet.from_capacities({"a": 1.0}, migration="teleport")
        with pytest.raises(ConfigurationError):
            RenderFleet.from_capacities({"a": 1.0}, overflow="degrade")
        with pytest.raises(ConfigurationError):
            RenderFleet.from_capacities({"a": 1.0}, migration_penalty_ms=-1.0)

    def test_initial_must_name_fleet_servers(self):
        with pytest.raises(ConfigurationError):
            RenderFleet.from_capacities({"a": 1.0}, initial=("z",))
        fleet = RenderFleet.from_capacities({"a": 1.0, "b": 1.0}, initial=("a",))
        assert fleet.initially_up("a") and not fleet.initially_up("b")

    def test_unknown_server_lookup(self):
        with pytest.raises(ConfigurationError):
            _fleet().server("z")


class TestCapacityEventValidation:
    def test_capacity_events_require_a_fleet(self):
        with pytest.raises(ConfigurationError):
            Session(clients=("GRID",), events=(ServerFail(100.0, "a"),))

    def test_fleet_and_server_are_mutually_exclusive(self):
        with pytest.raises(ConfigurationError):
            Session(clients=("GRID",), server=RenderServer(), fleet=_fleet())

    def test_capacity_event_needs_a_server_name(self):
        with pytest.raises(ConfigurationError):
            ServerFail(100.0)

    def test_unknown_server_rejected(self):
        with pytest.raises(ConfigurationError):
            Session(
                clients=("GRID",), events=(ServerFail(100.0, "z"),), fleet=_fleet()
            )

    def test_double_down_and_double_up_rejected(self):
        with pytest.raises(ConfigurationError):
            Session(
                clients=("GRID",),
                events=(ServerFail(100.0, "b"), ServerDown(200.0, "b")),
                fleet=_fleet(),
            )
        with pytest.raises(ConfigurationError):
            Session(
                clients=("GRID",),
                events=(ServerUp(100.0, "a"),),
                fleet=_fleet(),
            )

    def test_fail_at_t0_is_allowed(self):
        session = Session(
            clients=("GRID",), events=(ServerFail(0.0, "b"),), fleet=_fleet()
        )
        timeline = session.timeline(n_frames=60)
        # One boundary: the failure folds into the opening epoch, whose
        # server roster never includes b.
        assert len(timeline.epochs) == 1
        assert [w.server for w in timeline.epochs[0].servers] == ["a"]
        assert timeline.client(0).servers == ((0.0, "a"),)

    def test_down_then_up_at_one_instant_is_a_blip(self):
        """Rank order: Down (0) applies before Up (2) at equal t.  A
        drained blip re-seats the client gracefully — no penalty."""
        n_frames = 60
        t = 0.5 * _duration(n_frames)
        session = Session(
            clients=("GRID",),
            events=(ServerUp(t, "a"), ServerDown(t, "a")),
            fleet=RenderFleet.from_capacities({"a": 2.0}),
        )
        timeline = session.timeline(n_frames=n_frames)
        assert timeline.client(0).servers == ((0.0, "a"),)
        assert timeline.client(0).migrations == 0
        schedule = ShareSchedule(timeline.client(0).run.server_allocation)
        assert schedule.share_at(t + 1.0) > STALL_SHARE

    def test_fail_then_up_at_one_instant_still_costs_the_penalty(self):
        """A fail/up blip loses in-flight state: the client is displaced
        and pays the migration penalty even back on the same server."""
        n_frames = 60
        t = 0.5 * _duration(n_frames)
        penalty = 100.0
        session = Session(
            clients=("GRID",),
            events=(ServerFail(t, "a"), ServerUp(t, "a")),
            fleet=RenderFleet.from_capacities(
                {"a": 2.0}, migration_penalty_ms=penalty
            ),
        )
        timeline = session.timeline(n_frames=n_frames)
        client = timeline.client(0)
        assert client.servers == ((0.0, "a"),)  # same box, no migration
        assert client.migrations == 0
        schedule = ShareSchedule(client.run.server_allocation)
        assert schedule.share_at(t + penalty / 2) == STALL_SHARE
        assert schedule.share_at(t + penalty + 1.0) > STALL_SHARE


class TestPlacementPolicies:
    def test_registry(self):
        assert PLACEMENT_NAMES == ("first-fit", "least-loaded", "sticky")
        assert placement_by_name("LEAST-LOADED").name == "least-loaded"
        with pytest.raises(ConfigurationError):
            placement_by_name("round-robin")

    def test_first_fit_packs_the_first_server(self):
        policy = FirstFitPlacement()
        assert policy.place(("a", "b"), {"a": 1.0, "b": 0.0},
                            {"a": 2.0, "b": 2.0}, None) == "a"

    def test_least_loaded_spreads(self):
        policy = LeastLoadedPlacement()
        assert policy.place(("a", "b"), {"a": 1.0, "b": 0.0},
                            {"a": 2.0, "b": 2.0}, None) == "b"
        # Load is capacity-relative: 1/4 beats 0.5/1.
        assert policy.place(("a", "b"), {"a": 1.0, "b": 0.5},
                            {"a": 4.0, "b": 1.0}, None) == "a"
        # Ties break in declaration order.
        assert policy.place(("a", "b"), {"a": 0.0, "b": 0.0},
                            {"a": 2.0, "b": 2.0}, None) == "a"

    def test_sticky_prefers_the_previous_server(self):
        policy = StickyPlacement()
        assert policy.place(("a", "b"), {"a": 1.0, "b": 0.0},
                            {"a": 2.0, "b": 2.0}, "a") == "a"
        # Falls back to least-loaded when the previous server is gone.
        assert policy.place(("a", "b"), {"a": 1.0, "b": 0.0},
                            {"a": 2.0, "b": 2.0}, "z") == "b"

    def test_fleet_placement_first_fit_vs_least_loaded(self):
        n_frames = 60
        for placement, expected in (
            ("first-fit", ("a", "a")),
            ("least-loaded", ("a", "b")),
        ):
            session = Session(
                clients=("Doom3-L", "GRID"),
                events=(ServerFail(0.5 * _duration(n_frames), "b"),),
                fleet=_fleet(placement=placement),
            )
            epoch = session.timeline(n_frames=n_frames).epochs[0]
            assert tuple(name for _, name in epoch.placements) == expected


class TestSingleServerParity:
    """A one-server fleet with no capacity events plans like a bare server."""

    @pytest.mark.parametrize("overflow", ["queue", "reject"])
    def test_specs_and_keys_match_the_bare_server(self, overflow):
        n_frames = 90
        duration = _duration(n_frames)
        events = (Join(0.2 * duration, "Doom3-L"), Leave(0.5 * duration, 1))
        bare = Session(
            clients=("GRID", "Doom3-L"),
            events=events,
            server=RenderServer(capacity_clients=2.0, overflow=overflow),
        )
        fleet = Session(
            clients=("GRID", "Doom3-L"),
            events=events,
            fleet=RenderFleet.from_capacities({"a": 2.0}, overflow=overflow),
        )
        a = bare.timeline(n_frames=n_frames, seed=3)
        b = fleet.timeline(n_frames=n_frames, seed=3)
        assert a.specs == b.specs
        assert [spec_key(s) for s in a.specs] == [spec_key(s) for s in b.specs]
        for ea, eb in zip(a.epochs, b.epochs):
            assert ea.decisions == eb.decisions
            assert ea.serviced == eb.serviced

    def test_no_event_fleet_matches_the_static_server_plan(self):
        scenario_clients = (ClientSpec("GRID"), ClientSpec("Doom3-L"))
        bare = Session(
            clients=scenario_clients,
            server=RenderServer(capacity_clients=2.0, overflow="queue"),
            policy="deadline",
        )
        fleet = Session(
            clients=scenario_clients,
            fleet=RenderFleet.from_capacities({"a": 2.0}),
            policy="deadline",
        )
        a = bare.timeline(n_frames=60)
        b = fleet.timeline(n_frames=60)
        assert a.specs == b.specs
        assert [spec_key(s) for s in a.specs] == [spec_key(s) for s in b.specs]

    def test_bit_identical_results(self):
        n_frames = 40
        events = (Leave(0.5 * _duration(n_frames), 1),)
        bare = Session(
            clients=("GRID", "Doom3-L"),
            events=events,
            server=RenderServer(capacity_clients=2.0, overflow="queue"),
        )
        fleet = Session(
            clients=("GRID", "Doom3-L"),
            events=events,
            fleet=RenderFleet.from_capacities({"a": 2.0}),
        )
        engine = BatchEngine()
        via_bare = engine.run_specs(bare.timeline(n_frames=n_frames).specs)
        via_fleet = engine.run_specs(fleet.timeline(n_frames=n_frames).specs)
        assert pickle.dumps(list(via_bare.values())) == pickle.dumps(
            list(via_fleet.values())
        )


class TestMigration:
    def test_failure_migrates_the_displaced_client(self):
        n_frames = 90
        t = 0.4 * _duration(n_frames)
        session = Session(
            clients=("Doom3-L", "GRID"),
            events=(ServerFail(t, "b"),),
            fleet=_fleet(),
        )
        timeline = session.timeline(n_frames=n_frames)
        moved = timeline.client(1)
        assert moved.servers == ((0.0, "b"), (t, "a"))
        assert moved.migrations == 1
        # The run is one contiguous spec spanning the whole session.
        assert moved.run is not None
        assert moved.run.start_ms == 0.0
        assert moved.run.n_frames == n_frames
        # The failure epoch records the migration on the target server.
        assert timeline.epochs[1].servers[0].migrated_in == (1,)

    def test_migration_penalty_splices_a_stall_window(self):
        n_frames = 90
        t = 0.4 * _duration(n_frames)
        penalty = 150.0
        session = Session(
            clients=("Doom3-L", "GRID"),
            events=(ServerFail(t, "b"),),
            fleet=_fleet(migration_penalty_ms=penalty),
        )
        run = session.timeline(n_frames=n_frames).client(1).run
        schedule = ShareSchedule(run.server_allocation)
        assert schedule.share_at(t + penalty / 2) == STALL_SHARE
        assert schedule.share_at(t + penalty + 1.0) > STALL_SHARE
        assert schedule.share_at(t - 1.0) > STALL_SHARE

    def test_drained_scale_down_migrates_penalty_free(self):
        n_frames = 90
        t = 0.4 * _duration(n_frames)
        session = Session(
            clients=("Doom3-L", "GRID"),
            events=(ServerDown(t, "b", drain=True),),
            fleet=_fleet(migration_penalty_ms=150.0),
        )
        timeline = session.timeline(n_frames=n_frames)
        assert timeline.client(1).migrations == 1
        schedule = ShareSchedule(timeline.client(1).run.server_allocation)
        assert schedule.share_at(t + 1.0) > STALL_SHARE

    def test_requeue_parks_the_displaced_client(self):
        n_frames = 90
        t = 0.4 * _duration(n_frames)
        session = Session(
            clients=("Doom3-L", "GRID"),
            events=(ServerFail(t, "b"),),
            fleet=_fleet(migration="requeue"),
        )
        timeline = session.timeline(n_frames=n_frames)
        parked = timeline.client(1)
        assert parked.servers == ((0.0, "b"), (t, None))
        assert parked.migrations == 0
        schedule = ShareSchedule(parked.run.server_allocation)
        assert schedule.share_at(t + 1.0) == STALL_SHARE
        # Parked clients count as queued, not serviced, in the epoch.
        assert timeline.epochs[-1].queued == (1,)
        assert timeline.epochs[-1].serviced == (0,)

    def test_drained_scale_down_migrates_even_under_requeue(self):
        """Requeue is the naive handling of *unplanned* outages; a
        drained (planned) scale-down still migrates gracefully."""
        n_frames = 90
        t = 0.4 * _duration(n_frames)
        session = Session(
            clients=("Doom3-L", "GRID"),
            events=(ServerDown(t, "b", drain=True),),
            fleet=_fleet(migration="requeue"),
        )
        timeline = session.timeline(n_frames=n_frames)
        moved = timeline.client(1)
        assert moved.servers == ((0.0, "b"), (t, "a"))
        assert moved.migrations == 1
        schedule = ShareSchedule(moved.run.server_allocation)
        assert schedule.share_at(t + 1.0) > STALL_SHARE

    def test_requeued_client_recovers_at_a_later_event(self):
        """A parked client is re-seated when a re-planning event fires."""
        n_frames = 120
        duration = _duration(n_frames)
        t_fail, t_up = 0.3 * duration, 0.6 * duration
        session = Session(
            clients=("Doom3-L", "GRID"),
            events=(ServerFail(t_fail, "b"), ServerUp(t_up, "b")),
            fleet=_fleet(migration="requeue"),
        )
        timeline = session.timeline(n_frames=n_frames)
        revived = timeline.client(1)
        assert revived.servers == ((0.0, "b"), (t_fail, None), (t_up, "b"))
        schedule = ShareSchedule(revived.run.server_allocation)
        assert schedule.share_at(t_fail + 1.0) == STALL_SHARE
        assert schedule.share_at(t_up + _fleet().migration_penalty_ms + 1.0) > (
            STALL_SHARE
        )


class TestCapacityShrinkEdgeCases:
    def test_fleet_drained_to_zero_servers_mid_session(self):
        n_frames = 90
        duration = _duration(n_frames)
        session = Session(
            clients=("GRID", "Doom3-L"),
            events=(
                ServerDown(0.3 * duration, "a", drain=False),
                ServerFail(0.5 * duration, "b"),
            ),
            fleet=_fleet(placement="least-loaded"),
        )
        timeline = session.timeline(n_frames=n_frames)
        # After the second outage nobody renders; both clients park.
        last = timeline.epochs[-1]
        assert last.serviced == ()
        assert last.servers == ()
        assert set(last.queued) == {0, 1}
        for client in timeline.clients:
            assert client.servers[-1][1] is None
            schedule = ShareSchedule(client.run.server_allocation)
            assert schedule.share_at(0.9 * duration) == STALL_SHARE
        # The stalled session still simulates deterministically.
        result = simulate_session(session, n_frames=n_frames)
        assert len(result.per_client) == 2

    def test_queued_client_outlives_every_server(self):
        n_frames = 90
        duration = _duration(n_frames)
        session = Session(
            clients=("GRID", "Doom3-L", "Doom3-L"),
            events=(ServerFail(0.4 * duration, "a"), ServerFail(0.6 * duration, "b")),
            fleet=RenderFleet.from_capacities({"a": 1.0, "b": 1.0}),
        )
        timeline = session.timeline(n_frames=n_frames)
        ghost = timeline.client(2)
        assert ghost.run is None
        assert ghost.start_ms is None
        assert ghost.servers == ()
        result = simulate_session(session, n_frames=n_frames)
        assert result.result_for(2) is None

    def test_migration_cannot_land_on_a_server_failing_the_same_epoch(self):
        """Rank order applies every same-t failure before placement, so a
        displaced client never lands on a server dying at that instant."""
        n_frames = 90
        t = 0.4 * _duration(n_frames)
        session = Session(
            clients=("Doom3-L", "GRID"),
            events=(ServerFail(t, "b"), ServerFail(t, "a")),
            fleet=_fleet(placement="least-loaded"),
        )
        timeline = session.timeline(n_frames=n_frames)
        for client in timeline.clients:
            assert client.servers[-1] == (t, None)
            assert client.migrations == 0

    def test_double_migration_across_consecutive_failures(self):
        n_frames = 120
        duration = _duration(n_frames)
        session = Session(
            clients=("GRID",),
            events=(
                ServerFail(0.3 * duration, "a"),
                ServerFail(0.6 * duration, "b"),
            ),
            fleet=RenderFleet.from_capacities(
                {"a": 1.0, "b": 1.0, "c": 1.0}, placement="first-fit"
            ),
        )
        client = session.timeline(n_frames=n_frames).client(0)
        assert [name for _, name in client.servers] == ["a", "b", "c"]
        assert client.migrations == 2

    def test_scale_up_promotes_a_waiting_client(self):
        n_frames = 90
        duration = _duration(n_frames)
        t_join, t_up = 0.2 * duration, 0.5 * duration
        session = Session(
            clients=("GRID", "Doom3-L"),
            events=(Join(t_join, "Doom3-L"), ServerUp(t_up, "b")),
            fleet=RenderFleet.from_capacities(
                {"a": 2.0, "b": 1.0}, initial=("a",)
            ),
        )
        timeline = session.timeline(n_frames=n_frames)
        joiner = timeline.client(2)
        assert joiner.start_ms == pytest.approx(t_up)
        assert joiner.servers == ((t_up, "b"),)
        assert joiner.run.start_ms == pytest.approx(t_up)


class TestServerStats:
    def test_timeline_aggregates_per_server_stats(self):
        n_frames = 90
        t = 0.4 * _duration(n_frames)
        session = Session(
            clients=("Doom3-L", "GRID"),
            events=(ServerFail(t, "b"),),
            fleet=_fleet(),
        )
        timeline = session.timeline(n_frames=n_frames)
        stats = {s.server: s for s in timeline.server_stats}
        assert set(stats) == {"a", "b"}
        assert stats["b"].up_ms == pytest.approx(t)
        assert stats["a"].up_ms == pytest.approx(timeline.duration_ms)
        assert stats["a"].migrations_in == 1
        assert stats["a"].distinct_clients == 2
        assert stats["b"].peak_load == 1.0

    def test_aggregate_handles_zero_length_and_empty_windows(self):
        windows = [
            ServerWindow("a", 0.0, 100.0, 2.0, 1.0, clients=(0,)),
            ServerWindow("a", 100.0, 100.0, 2.0, 2.0, clients=(0, 1)),
            ServerWindow("a", 100.0, 200.0, 2.0, 0.0),
        ]
        (stats,) = aggregate_server_stats(windows)
        assert stats.up_ms == pytest.approx(200.0)
        assert stats.mean_utilisation == pytest.approx(0.25)
        assert stats.peak_load == 2.0
        assert stats.distinct_clients == 2
        assert aggregate_server_stats([]) == ()


class TestShareScheduleStall:
    def test_with_stall_splices_and_resumes(self):
        schedule = ShareSchedule(((0.0, 0.5), (200.0, 0.8)))
        stalled = schedule.with_stall(100.0, 0.05)
        assert stalled.share_at(50.0) == 0.05
        assert stalled.share_at(150.0) == 0.5
        assert stalled.share_at(250.0) == 0.8

    def test_with_stall_mid_segment_resume(self):
        schedule = ShareSchedule(((0.0, 0.5), (200.0, 0.8)))
        stalled = schedule.with_stall(300.0, 0.05)
        assert stalled.segments == ((0.0, 0.05), (300.0, 0.8))

    def test_with_stall_identity_and_validation(self):
        schedule = ShareSchedule(((0.0, 0.5),))
        assert schedule.with_stall(0.0, 0.05) is schedule
        with pytest.raises(ConfigurationError):
            schedule.with_stall(10.0, 0.0)
