"""Tests for frame records and simulation summary metrics."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.sim.metrics import FrameRecord, SimulationResult


def record(index, tracking, display, path=None, **kwargs):
    return FrameRecord(
        index=index,
        tracking_ms=tracking,
        display_ms=display,
        path_latency_ms=path if path is not None else float("nan"),
        **kwargs,
    )


class TestFrameRecord:
    def test_pipeline_latency(self):
        r = record(0, 10.0, 30.0)
        assert r.pipeline_latency_ms == pytest.approx(20.0)

    def test_e2e_prefers_path_latency(self):
        r = record(0, 10.0, 30.0, path=17.0)
        assert r.e2e_latency_ms == pytest.approx(17.0)

    def test_e2e_falls_back_to_pipeline(self):
        r = record(0, 10.0, 30.0)
        assert r.e2e_latency_ms == pytest.approx(20.0)

    def test_latency_ratio(self):
        r = record(0, 0, 1, local_ms=4.0, remote_path_ms=8.0)
        assert r.latency_ratio == pytest.approx(2.0)

    def test_latency_ratio_zero_local(self):
        r = record(0, 0, 1, local_ms=0.0, remote_path_ms=8.0)
        assert math.isinf(r.latency_ratio)
        r = record(0, 0, 1, local_ms=0.0, remote_path_ms=0.0)
        assert r.latency_ratio == 1.0


class TestSimulationResult:
    def _result(self, n=10, warmup=2, period=10.0, path=20.0):
        records = [
            record(
                i,
                tracking=i * period,
                display=i * period + 15.0,
                path=path,
                gpu_busy_ms=8.0,
                net_busy_ms=4.0,
                e1_deg=10.0 + i,
                transmitted_bytes=1e5,
                resolution_reduction=0.5,
            )
            for i in range(n)
        ]
        return SimulationResult("qvr", "TestApp", records, warmup_frames=warmup)

    def test_mean_latency_uses_path(self):
        result = self._result(path=21.0)
        assert result.mean_latency_ms == pytest.approx(21.0)

    def test_pipeline_latency_separate(self):
        result = self._result()
        assert result.mean_pipeline_latency_ms == pytest.approx(15.0)

    def test_measured_fps_from_intervals(self):
        result = self._result(period=10.0)
        assert result.measured_fps == pytest.approx(100.0)

    def test_formula_fps(self):
        result = self._result()
        # min(1000/8, 1000/4) = 125.
        assert result.formula_fps == pytest.approx(125.0)

    def test_warmup_excluded(self):
        records = [record(0, 0, 1000, path=500.0)] + [
            record(i, i * 10.0, i * 10.0 + 15, path=20.0) for i in range(1, 10)
        ]
        result = SimulationResult("x", "y", records, warmup_frames=1)
        assert result.mean_latency_ms == pytest.approx(20.0)

    def test_meets_targets(self):
        good = self._result(path=20.0)
        assert good.meets_mtp
        assert good.meets_target_fps
        bad = self._result(path=40.0)
        assert not bad.meets_mtp

    def test_mean_e1(self):
        result = self._result(n=10, warmup=2)
        # Frames 2..9 -> e1 = 12..19, mean 15.5.
        assert result.mean_e1_deg == pytest.approx(15.5)

    def test_nan_e1_for_non_foveated(self):
        records = [record(i, i * 10.0, i * 10.0 + 15) for i in range(5)]
        result = SimulationResult("local", "x", records, warmup_frames=0)
        assert math.isnan(result.mean_e1_deg)

    def test_percentile(self):
        result = self._result()
        assert result.latency_percentile_ms(50) == pytest.approx(20.0)

    def test_empty_result(self):
        result = SimulationResult("x", "y", [], warmup_frames=0)
        assert math.isnan(result.mean_latency_ms)
        assert math.isnan(result.measured_fps)

    def test_invalid_warmup(self):
        with pytest.raises(ConfigurationError):
            SimulationResult("x", "y", [], warmup_frames=-1)

    def test_drop_rate(self):
        records = [
            record(i, 0, 1, dropped=(i % 4 == 0)) for i in range(8)
        ]
        result = SimulationResult("x", "y", records, warmup_frames=0)
        assert result.drop_rate == pytest.approx(0.25)


class TestTailFps:
    def _result(self, intervals, warmup=0):
        times, t = [], 0.0
        for interval in [0.0, *intervals]:
            t += interval
            times.append(t)
        return SimulationResult(
            system="qvr",
            app="GRID",
            records=[record(i, t - 5.0, t) for i, t in enumerate(times)],
            warmup_frames=warmup,
        )

    def test_tail_fps_uses_the_worst_interval(self):
        from repro.sim.metrics import tail_fps

        # 99th percentile of [10, 10, 40] ~ the 40 ms hitch.
        assert tail_fps([0.0, 10.0, 20.0, 60.0]) == pytest.approx(
            1000.0 / 39.4, rel=0.02
        )

    def test_tail_fps_degenerate_series(self):
        from repro.sim.metrics import tail_fps

        assert math.isnan(tail_fps([]))
        assert math.isnan(tail_fps([5.0]))
        assert tail_fps([1.0, 1.0]) == float("inf")

    def test_p99_below_mean_fps_with_a_hitch(self):
        result = self._result([10.0] * 50 + [50.0])
        assert result.p99_fps < result.measured_fps
        assert result.p99_fps == pytest.approx(result.fps_percentile(99.0))

    def test_uniform_intervals_make_p99_equal_mean(self):
        result = self._result([10.0] * 30)
        assert result.p99_fps == pytest.approx(result.measured_fps)
        assert result.p99_fps == pytest.approx(100.0)

    def test_percentile_respects_warmup(self):
        slow_start = self._result([100.0, 100.0] + [10.0] * 30, warmup=3)
        assert slow_start.fps_percentile(99.0) == pytest.approx(100.0)

    def test_too_few_steady_frames_is_nan(self):
        result = self._result([10.0], warmup=1)
        assert math.isnan(result.p99_fps)
