"""Tests for frame records and simulation summary metrics."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.sim.metrics import (
    ExactMoments,
    FrameRecord,
    QuantileSketch,
    RunningMoments,
    SimulationResult,
    StreamSummary,
)


def record(index, tracking, display, path=None, **kwargs):
    return FrameRecord(
        index=index,
        tracking_ms=tracking,
        display_ms=display,
        path_latency_ms=path if path is not None else float("nan"),
        **kwargs,
    )


class TestFrameRecord:
    def test_pipeline_latency(self):
        r = record(0, 10.0, 30.0)
        assert r.pipeline_latency_ms == pytest.approx(20.0)

    def test_e2e_prefers_path_latency(self):
        r = record(0, 10.0, 30.0, path=17.0)
        assert r.e2e_latency_ms == pytest.approx(17.0)

    def test_e2e_falls_back_to_pipeline(self):
        r = record(0, 10.0, 30.0)
        assert r.e2e_latency_ms == pytest.approx(20.0)

    def test_latency_ratio(self):
        r = record(0, 0, 1, local_ms=4.0, remote_path_ms=8.0)
        assert r.latency_ratio == pytest.approx(2.0)

    def test_latency_ratio_zero_local(self):
        r = record(0, 0, 1, local_ms=0.0, remote_path_ms=8.0)
        assert math.isinf(r.latency_ratio)
        r = record(0, 0, 1, local_ms=0.0, remote_path_ms=0.0)
        assert r.latency_ratio == 1.0


class TestSimulationResult:
    def _result(self, n=10, warmup=2, period=10.0, path=20.0):
        records = [
            record(
                i,
                tracking=i * period,
                display=i * period + 15.0,
                path=path,
                gpu_busy_ms=8.0,
                net_busy_ms=4.0,
                e1_deg=10.0 + i,
                transmitted_bytes=1e5,
                resolution_reduction=0.5,
            )
            for i in range(n)
        ]
        return SimulationResult("qvr", "TestApp", records, warmup_frames=warmup)

    def test_mean_latency_uses_path(self):
        result = self._result(path=21.0)
        assert result.mean_latency_ms == pytest.approx(21.0)

    def test_pipeline_latency_separate(self):
        result = self._result()
        assert result.mean_pipeline_latency_ms == pytest.approx(15.0)

    def test_measured_fps_from_intervals(self):
        result = self._result(period=10.0)
        assert result.measured_fps == pytest.approx(100.0)

    def test_formula_fps(self):
        result = self._result()
        # min(1000/8, 1000/4) = 125.
        assert result.formula_fps == pytest.approx(125.0)

    def test_warmup_excluded(self):
        records = [record(0, 0, 1000, path=500.0)] + [
            record(i, i * 10.0, i * 10.0 + 15, path=20.0) for i in range(1, 10)
        ]
        result = SimulationResult("x", "y", records, warmup_frames=1)
        assert result.mean_latency_ms == pytest.approx(20.0)

    def test_meets_targets(self):
        good = self._result(path=20.0)
        assert good.meets_mtp
        assert good.meets_target_fps
        bad = self._result(path=40.0)
        assert not bad.meets_mtp

    def test_mean_e1(self):
        result = self._result(n=10, warmup=2)
        # Frames 2..9 -> e1 = 12..19, mean 15.5.
        assert result.mean_e1_deg == pytest.approx(15.5)

    def test_nan_e1_for_non_foveated(self):
        records = [record(i, i * 10.0, i * 10.0 + 15) for i in range(5)]
        result = SimulationResult("local", "x", records, warmup_frames=0)
        assert math.isnan(result.mean_e1_deg)

    def test_percentile(self):
        result = self._result()
        assert result.latency_percentile_ms(50) == pytest.approx(20.0)

    def test_empty_result(self):
        result = SimulationResult("x", "y", [], warmup_frames=0)
        assert math.isnan(result.mean_latency_ms)
        assert math.isnan(result.measured_fps)

    def test_invalid_warmup(self):
        with pytest.raises(ConfigurationError):
            SimulationResult("x", "y", [], warmup_frames=-1)

    def test_drop_rate(self):
        records = [
            record(i, 0, 1, dropped=(i % 4 == 0)) for i in range(8)
        ]
        result = SimulationResult("x", "y", records, warmup_frames=0)
        assert result.drop_rate == pytest.approx(0.25)


class TestTailFps:
    def _result(self, intervals, warmup=0):
        times, t = [], 0.0
        for interval in [0.0, *intervals]:
            t += interval
            times.append(t)
        return SimulationResult(
            system="qvr",
            app="GRID",
            records=[record(i, t - 5.0, t) for i, t in enumerate(times)],
            warmup_frames=warmup,
        )

    def test_tail_fps_uses_the_worst_interval(self):
        from repro.sim.metrics import tail_fps

        # 99th percentile of [10, 10, 40] ~ the 40 ms hitch.
        assert tail_fps([0.0, 10.0, 20.0, 60.0]) == pytest.approx(
            1000.0 / 39.4, rel=0.02
        )

    def test_tail_fps_degenerate_series(self):
        from repro.sim.metrics import tail_fps

        assert math.isnan(tail_fps([]))
        assert math.isnan(tail_fps([5.0]))
        assert tail_fps([1.0, 1.0]) == float("inf")

    def test_p99_below_mean_fps_with_a_hitch(self):
        result = self._result([10.0] * 50 + [50.0])
        assert result.p99_fps < result.measured_fps
        assert result.p99_fps == pytest.approx(result.fps_percentile(99.0))

    def test_uniform_intervals_make_p99_equal_mean(self):
        result = self._result([10.0] * 30)
        assert result.p99_fps == pytest.approx(result.measured_fps)
        assert result.p99_fps == pytest.approx(100.0)

    def test_percentile_respects_warmup(self):
        slow_start = self._result([100.0, 100.0] + [10.0] * 30, warmup=3)
        assert slow_start.fps_percentile(99.0) == pytest.approx(100.0)

    def test_too_few_steady_frames_is_nan(self):
        result = self._result([10.0], warmup=1)
        assert math.isnan(result.p99_fps)


# ---------------------------------------------------------------------------
# Streaming aggregation primitives (sharded-sweep support)
# ---------------------------------------------------------------------------


class TestRunningMoments:
    def test_matches_exact_statistics(self):
        import numpy as np

        values = np.random.default_rng(7).lognormal(2.0, 0.8, size=500)
        moments = RunningMoments()
        moments.extend(values)
        assert moments.count == 500
        assert moments.mean == pytest.approx(float(np.mean(values)))
        assert moments.std == pytest.approx(float(np.std(values)))
        assert moments.min == float(np.min(values))
        assert moments.max == float(np.max(values))

    def test_merge_of_halves_equals_whole(self):
        import numpy as np

        values = np.random.default_rng(11).normal(50.0, 9.0, size=401)
        whole = RunningMoments()
        whole.extend(values)
        left, right = RunningMoments(), RunningMoments()
        left.extend(values[:137])
        right.extend(values[137:])
        left.merge(right)
        assert left.count == whole.count
        assert left.mean == pytest.approx(whole.mean)
        assert left.variance == pytest.approx(whole.variance)
        assert left.min == whole.min
        assert left.max == whole.max

    def test_merge_into_empty_copies(self):
        source = RunningMoments()
        source.extend([1.0, 2.0, 3.0])
        target = RunningMoments()
        target.merge(source)
        assert target.count == 3
        assert target.mean == pytest.approx(2.0)
        source.merge(RunningMoments())  # merging an empty is a no-op
        assert source.count == 3

    def test_nan_values_are_skipped(self):
        moments = RunningMoments()
        moments.extend([1.0, float("nan"), 3.0])
        assert moments.count == 2
        assert moments.mean == pytest.approx(2.0)

    def test_empty_reports_nan(self):
        moments = RunningMoments()
        assert math.isnan(moments.variance)
        assert math.isnan(moments.std)


class TestExactMoments:
    def test_matches_exact_statistics(self):
        import numpy as np

        values = np.random.default_rng(7).lognormal(2.0, 0.8, size=500)
        moments = ExactMoments()
        moments.extend(values)
        assert moments.count == 500
        assert moments.mean == pytest.approx(float(np.mean(values)))
        assert moments.std == pytest.approx(float(np.std(values)))
        assert moments.min == float(np.min(values))
        assert moments.max == float(np.max(values))

    def test_order_invariant_bit_identical(self):
        import numpy as np

        rng = np.random.default_rng(13)
        values = list(rng.lognormal(2.0, 1.5, size=2000))
        forward = ExactMoments()
        forward.extend(values)
        for permutation_seed in (1, 2, 3):
            shuffled = list(values)
            np.random.default_rng(permutation_seed).shuffle(shuffled)
            other = ExactMoments()
            other.extend(shuffled)
            assert other.mean == forward.mean  # bit-identical, not approx
            assert other.std == forward.std
            assert other.variance == forward.variance

    def test_merge_order_invariant_bit_identical(self):
        import numpy as np

        values = list(np.random.default_rng(17).normal(50.0, 9.0, size=999))
        chunks = [values[i::7] for i in range(7)]
        parts = []
        for chunk in chunks:
            m = ExactMoments()
            m.extend(chunk)
            parts.append(m)
        merged_forward = ExactMoments()
        for part in parts:
            merged_forward.merge(part)
        merged_reverse = ExactMoments()
        for part in reversed(parts):
            merged_reverse.merge(part)
        assert merged_forward.mean == merged_reverse.mean
        assert merged_forward.std == merged_reverse.std
        assert merged_forward.count == merged_reverse.count == 999

    def test_nan_skipped_and_inf_saturates(self):
        moments = ExactMoments()
        moments.extend([1.0, float("nan"), 3.0])
        assert moments.count == 2
        assert moments.mean == pytest.approx(2.0)
        moments.add(float("inf"))
        assert moments.mean == float("inf")
        assert moments.variance == float("inf")

    def test_empty_reports_nan(self):
        moments = ExactMoments()
        assert math.isnan(moments.mean)
        assert math.isnan(moments.variance)
        assert math.isnan(moments.std)

    def test_mode_mixing_rejected(self):
        with pytest.raises(ConfigurationError):
            ExactMoments().merge(RunningMoments())
        with pytest.raises(ConfigurationError):
            RunningMoments().merge(ExactMoments())

    def test_exact_stream_summary_uses_exact_moments(self):
        summary = StreamSummary(exact=True)
        assert isinstance(summary.moments, ExactMoments)
        summary.extend([1.0, 2.0, 3.0])
        assert summary.mean == 2.0
        with pytest.raises(ConfigurationError):
            summary.merge(StreamSummary())


class TestQuantileSketch:
    def test_quantiles_within_relative_error_bound(self):
        import numpy as np

        values = np.random.default_rng(3).lognormal(2.5, 1.0, size=5000)
        sketch = QuantileSketch()
        sketch.extend(values)
        bound = 10.0 ** (1.0 / (2 * sketch.bins_per_decade)) - 1.0
        for q in (0.5, 0.9, 0.99):
            exact = float(np.quantile(values, q))
            got = sketch.quantile(q)
            assert abs(got - exact) / exact <= 2 * bound

    def test_merge_equals_whole_stream(self):
        import numpy as np

        values = np.random.default_rng(5).lognormal(1.0, 0.7, size=1000)
        whole = QuantileSketch()
        whole.extend(values)
        left, right = QuantileSketch(), QuantileSketch()
        left.extend(values[:333])
        right.extend(values[333:])
        left.merge(right)
        assert left.count == whole.count
        for q in (0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0):
            assert left.quantile(q) == whole.quantile(q)

    def test_geometry_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            QuantileSketch().merge(QuantileSketch(bins_per_decade=8))

    def test_out_of_range_values_clamp(self):
        sketch = QuantileSketch(min_value=1.0, max_value=10.0)
        sketch.extend([-5.0, 0.0, 1e9])
        assert sketch.count == 3
        assert sketch.quantile(0.0) >= 1.0
        assert sketch.quantile(1.0) <= 10.0

    def test_empty_and_invalid_inputs(self):
        sketch = QuantileSketch()
        assert math.isnan(sketch.quantile(0.5))
        with pytest.raises(ConfigurationError):
            sketch.quantile(1.5)
        with pytest.raises(ConfigurationError):
            QuantileSketch(min_value=0.0)
        with pytest.raises(ConfigurationError):
            QuantileSketch(bins_per_decade=0)


class TestStreamSummary:
    def test_row_reports_every_statistic(self):
        summary = StreamSummary()
        summary.extend(float(v) for v in range(1, 101))
        row = summary.row()
        assert set(row) == {"count", "mean", "std", "min", "p50", "p90", "p99", "max"}
        assert row["count"] == 100
        assert row["mean"] == pytest.approx(50.5)
        assert row["min"] == 1.0
        assert row["max"] == 100.0
        assert row["p50"] == pytest.approx(50.5, rel=0.05)

    def test_merge_across_shards(self):
        parts = [StreamSummary() for _ in range(3)]
        for index, part in enumerate(parts):
            part.extend(float(v) for v in range(index * 100, (index + 1) * 100))
        total = StreamSummary()
        for part in parts:
            total.merge(part)
        assert total.count == 300
        assert total.min == 0.0
        assert total.max == 299.0

    def test_empty_summary_is_nan(self):
        summary = StreamSummary()
        assert summary.count == 0
        assert math.isnan(summary.mean)
        assert math.isnan(summary.p50)

    def test_fold_into_consumes_steady_state_series(self):
        n, warmup, period = 12, 2, 10.0
        records = [
            record(i, tracking=i * period, display=i * period + 15.0, path=20.0)
            for i in range(n)
        ]
        result = SimulationResult("qvr", "TestApp", records, warmup_frames=warmup)
        latency, fps = StreamSummary(), StreamSummary()
        result.fold_into(latency=latency, fps=fps)
        assert latency.count == n - warmup
        assert latency.mean == pytest.approx(20.0)
        assert fps.count == n - warmup - 1
        assert fps.mean == pytest.approx(1000.0 / period)
        assert fps.p50 == pytest.approx(1000.0 / period, rel=0.05)
