"""Tests for the batched experiment engine (sweeps, cache, determinism).

Bit-identity is asserted through ``pickle.dumps`` equality: dataclass
``==`` is false-negative on NaN fields (non-foveated systems record
``e1_deg = NaN``), while the pickle byte stream captures exact float bit
patterns.
"""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.network.conditions import LTE_4G, WIFI
from repro.sim.runner import (
    BatchEngine,
    ResultCache,
    RunSpec,
    Sweep,
    run,
    run_batch,
    run_comparison,
    spec_key,
)
from repro.sim.systems import PlatformConfig


def _bit_identical(a, b) -> bool:
    return pickle.dumps(a) == pickle.dumps(b)


def _small_sweep() -> Sweep:
    return Sweep(
        systems=("local", "qvr"),
        apps=("Doom3-L", "GRID"),
        n_frames=25,
        warmup_frames=5,
    )


class TestSweep:
    def test_grid_size(self):
        sweep = Sweep(
            systems=("local", "qvr"),
            apps=("Doom3-L",),
            platforms=(PlatformConfig(), PlatformConfig(network=LTE_4G)),
            seeds=(0, 1, 2),
            n_frames=40,
        )
        assert len(sweep) == 2 * 1 * 2 * 3
        specs = sweep.specs()
        assert len(specs) == len(sweep)
        assert len(set(specs)) == len(specs)

    def test_expansion_is_deterministic(self):
        assert _small_sweep().specs() == _small_sweep().specs()

    def test_default_warmup_clamps_to_short_runs(self):
        sweep = Sweep(systems=("local",), apps=("Doom3-L",), n_frames=10)
        assert all(spec.warmup_frames == 0 for spec in sweep.specs())
        longer = Sweep(systems=("local",), apps=("Doom3-L",), n_frames=100)
        assert all(spec.warmup_frames == 30 for spec in longer.specs())

    def test_empty_dimension_rejected(self):
        with pytest.raises(ConfigurationError):
            Sweep(systems=(), apps=("Doom3-L",))
        with pytest.raises(ConfigurationError):
            Sweep(systems=("local",), apps=("Doom3-L",), seeds=())

    def test_spec_indexes_into_grid(self):
        sweep = _small_sweep()
        specs = sweep.specs()
        assert sweep.spec("local", "Doom3-L", PlatformConfig()) in specs


class TestSweepProfiles:
    def test_profiles_axis_crosses_platforms(self):
        from repro.network.profile import ConstantProfile, PiecewiseProfile

        drop = PiecewiseProfile.bandwidth_drop(WIFI, 100.0, 200.0, 0.2)
        sweep = Sweep(
            systems=("local",),
            apps=("Doom3-L",),
            platforms=(PlatformConfig(), PlatformConfig(network=LTE_4G)),
            profiles=("wifi", drop),
            n_frames=20,
        )
        assert len(sweep) == 2 * 2
        networks = [spec.platform.network for spec in sweep.specs()]
        assert networks.count(ConstantProfile(WIFI)) == 2
        assert networks.count(drop) == 2

    def test_empty_profiles_rejected(self):
        with pytest.raises(ConfigurationError):
            Sweep(systems=("local",), apps=("Doom3-L",), profiles=())

    def test_no_profiles_keeps_platforms(self):
        sweep = _small_sweep()
        assert sweep.resolved_platforms() == sweep.platforms


class TestSpecKey:
    def test_stable_and_distinct(self):
        a = RunSpec(system="qvr", app="GRID", n_frames=40)
        assert spec_key(a) == spec_key(RunSpec(system="qvr", app="GRID", n_frames=40))
        assert spec_key(a) != spec_key(RunSpec(system="qvr", app="GRID", n_frames=41))
        assert spec_key(a) != spec_key(RunSpec(system="qvr", app="GRID", n_frames=40, seed=1))

    def test_platform_fields_reach_the_key(self):
        base = RunSpec(system="qvr", app="GRID")
        other = RunSpec(
            system="qvr", app="GRID", platform=PlatformConfig(network=LTE_4G)
        )
        assert spec_key(base) != spec_key(other)

    def test_sharing_fields_reach_the_key(self):
        solo = RunSpec(system="qvr", app="GRID")
        shared = RunSpec(system="qvr", app="GRID", shared_clients=4)
        assert spec_key(solo) != spec_key(shared)

    def test_network_profile_reaches_the_key(self):
        from repro.network.profile import ConstantProfile, PiecewiseProfile

        base = RunSpec(system="qvr", app="GRID")
        drop = RunSpec(
            system="qvr", app="GRID",
            platform=PlatformConfig(
                network=PiecewiseProfile.bandwidth_drop(WIFI, 100.0, 200.0, 0.2)
            ),
        )
        wrapped = RunSpec(
            system="qvr", app="GRID",
            platform=PlatformConfig(network=ConstantProfile(WIFI)),
        )
        keys = {spec_key(base), spec_key(drop), spec_key(wrapped)}
        assert len(keys) == 3

    def test_schema_version_reaches_the_key(self, monkeypatch):
        """Bumping the spec schema must invalidate every existing key."""
        import repro.sim.runner as runner_module

        spec = RunSpec(system="qvr", app="GRID")
        old = spec_key(spec)
        monkeypatch.setattr(runner_module, "_SPEC_SCHEMA_VERSION", 99)
        assert spec_key(spec) != old

    def test_package_version_reaches_the_key(self, monkeypatch):
        """A new release must not silently reuse an old release's results."""
        import repro.sim.runner as runner_module

        spec = RunSpec(system="qvr", app="GRID")
        old = spec_key(spec)
        monkeypatch.setattr(runner_module, "__version__", "0.0.0-test")
        assert spec_key(spec) != old


class TestDeterminism:
    def test_serial_and_parallel_are_bit_identical(self):
        """The same sweep at --jobs 1 and --jobs 4 must agree bit-for-bit."""
        specs = _small_sweep().specs()
        serial = BatchEngine(jobs=1).run_specs(specs)
        parallel = BatchEngine(jobs=4).run_specs(specs)
        assert list(serial) == list(parallel)
        for spec in specs:
            assert _bit_identical(serial[spec], parallel[spec]), spec

    def test_batch_matches_direct_run(self):
        spec = RunSpec(system="ffr", app="HL2-L", n_frames=25, warmup_frames=5)
        batch = run_batch([spec])
        assert _bit_identical(batch[spec], run(spec))


class TestCache:
    def test_second_run_hits_cache_for_every_spec(self, tmp_path):
        specs = _small_sweep().specs()
        first = BatchEngine(cache_dir=tmp_path)
        cold = first.run_specs(specs)
        assert first.stats.executed == len(specs)
        assert first.stats.cache_hits == 0

        second = BatchEngine(cache_dir=tmp_path)
        warm = second.run_specs(specs)
        assert second.stats.executed == 0
        assert second.stats.cache_hits == len(specs)
        for spec in specs:
            assert _bit_identical(cold[spec], warm[spec])

    def test_cache_round_trip_preserves_bits(self, tmp_path):
        spec = RunSpec(system="qvr", app="Doom3-L", n_frames=25, warmup_frames=5)
        cache = ResultCache(tmp_path)
        result = run(spec)
        cache.put(spec, result)
        assert _bit_identical(cache.get(spec), result)
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = RunSpec(system="local", app="Doom3-L", n_frames=25, warmup_frames=5)
        cache = ResultCache(tmp_path)
        cache.put(spec, run(spec))
        cache.path_for(spec).write_bytes(b"not a pickle")
        assert cache.get(spec) is None

    def test_foreign_pickle_entry_is_a_miss(self, tmp_path):
        """A valid pickle that is not the payload dict must not crash."""
        spec = RunSpec(system="local", app="Doom3-L", n_frames=25, warmup_frames=5)
        cache = ResultCache(tmp_path)
        cache.path_for(spec).write_bytes(pickle.dumps(["not", "a", "payload"]))
        assert cache.get(spec) is None

    def test_results_stream_into_cache_as_they_complete(self, tmp_path):
        """A failing spec must not discard cache entries of finished runs."""
        specs = _small_sweep().specs()
        engine = BatchEngine(cache_dir=tmp_path)
        original_run = run

        def boom(spec):
            if spec == specs[-1]:
                raise RuntimeError("worker died")
            return original_run(spec)

        import repro.sim.runner as runner_module

        monkey = pytest.MonkeyPatch()
        monkey.setattr(runner_module, "run", boom)
        try:
            with pytest.raises(RuntimeError):
                engine.run_specs(specs)
        finally:
            monkey.undo()
        # Every spec that completed before the failure was persisted.
        assert len(ResultCache(tmp_path)) == len(specs) - 1

    def test_clear_evicts_every_entry(self, tmp_path):
        specs = _small_sweep().specs()
        engine = BatchEngine(cache_dir=tmp_path)
        engine.run_specs(specs)
        cache = ResultCache(tmp_path)
        assert len(cache) == len(specs)
        assert cache.clear() == len(specs)
        assert len(cache) == 0
        # A fresh engine re-executes everything after eviction.
        fresh = BatchEngine(cache_dir=tmp_path)
        fresh.run_specs(specs)
        assert fresh.stats.executed == len(specs)
        assert fresh.stats.cache_hits == 0

    def test_clear_on_empty_cache(self, tmp_path):
        assert ResultCache(tmp_path).clear() == 0

    def test_in_memory_memo_dedupes_across_batches(self):
        engine = BatchEngine()
        spec = RunSpec(system="local", app="Doom3-L", n_frames=25, warmup_frames=5)
        engine.run_specs([spec])
        engine.run_specs([spec])
        assert engine.stats.executed == 1
        assert engine.stats.cache_hits == 1

    def test_duplicate_specs_execute_once(self):
        engine = BatchEngine()
        spec = RunSpec(system="local", app="Doom3-L", n_frames=25, warmup_frames=5)
        batch = engine.run_specs([spec, spec, spec])
        assert engine.stats.requested == 3
        assert engine.stats.unique == 1
        assert engine.stats.deduplicated == 2
        assert engine.stats.executed == 1
        assert len(batch) == 1


class TestEngineValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            BatchEngine(jobs=0)

    def test_comparison_matches_run_comparison(self):
        engine = BatchEngine()
        via_engine = engine.comparison("Doom3-L", systems=("local",), n_frames=20)
        direct = run_comparison("Doom3-L", systems=("local",), n_frames=20)
        assert _bit_identical(via_engine["local"], direct["local"])


class TestRunSpecValidation:
    def test_warmup_swallowing_run_rejected(self):
        with pytest.raises(ConfigurationError):
            RunSpec(system="qvr", app="GRID", n_frames=30, warmup_frames=30)
        with pytest.raises(ConfigurationError):
            RunSpec(system="qvr", app="GRID", n_frames=20, warmup_frames=30)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ConfigurationError):
            RunSpec(system="qvr", app="GRID", warmup_frames=-1)

    def test_shared_clients_validated(self):
        with pytest.raises(ConfigurationError):
            RunSpec(system="qvr", app="GRID", shared_clients=0)
        with pytest.raises(ConfigurationError):
            RunSpec(system="qvr", app="GRID", sharing_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            RunSpec(system="qvr", app="GRID", sharing_efficiency=1.5)

    def test_shared_platform_degrades_with_clients(self):
        solo = RunSpec(system="qvr", app="GRID")
        shared = RunSpec(system="qvr", app="GRID", shared_clients=4)
        assert solo.effective_platform() == solo.platform
        degraded = shared.effective_platform()
        assert (
            degraded.network.throughput_mbps < solo.platform.network.throughput_mbps
        )
        assert degraded.server.per_gpu_speedup < solo.platform.server.per_gpu_speedup

    def test_private_downlink_shares_only_the_server(self):
        spec = RunSpec(
            system="qvr", app="GRID", shared_clients=4, shared_downlink=False
        )
        derived = spec.effective_platform()
        assert derived.network == spec.platform.network
        assert derived.server.per_gpu_speedup < spec.platform.server.per_gpu_speedup

    def test_shared_downlink_reaches_the_key(self):
        shared = RunSpec(system="qvr", app="GRID", shared_clients=4)
        private = RunSpec(
            system="qvr", app="GRID", shared_clients=4, shared_downlink=False
        )
        assert spec_key(shared) != spec_key(private)
