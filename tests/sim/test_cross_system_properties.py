"""Cross-system invariants checked over every design and several titles.

These are the repository's structural guarantees: every simulation result
must satisfy them regardless of design, app, platform or seed.
"""

import numpy as np
import pytest

from repro import constants
from repro.network.conditions import ALL_CONDITIONS
from repro.sim.systems import PlatformConfig, SYSTEM_NAMES, make_system
from repro.workloads.apps import get_app

FAST_APPS = ("Doom3-L", "GRID")
N_FRAMES = 50


@pytest.mark.parametrize("system_name", SYSTEM_NAMES)
@pytest.mark.parametrize("app_name", FAST_APPS)
class TestUniversalInvariants:
    def test_invariants(self, system_name, app_name):
        system = make_system(system_name, get_app(app_name), seed=1)
        result = system.run(n_frames=N_FRAMES, warmup_frames=10)

        assert len(result.records) == N_FRAMES
        displays = [r.display_ms for r in result.records]
        assert displays == sorted(displays)

        for r in result.records:
            # Causality: photons come after the pose that produced them.
            assert r.display_ms > r.tracking_ms
            # Physicality: nonnegative occupancies and payloads.
            assert r.gpu_busy_ms >= 0
            assert r.net_busy_ms >= 0
            assert r.transmitted_bytes >= 0
            assert r.local_ms >= 0
            assert r.remote_path_ms >= 0
            # Path latency includes the fixed sensor + display segments.
            assert r.e2e_latency_ms >= (
                constants.SENSOR_TRANSPORT_MS + constants.DISPLAY_SCANOUT_MS
            )

        assert result.measured_fps > 0
        assert result.mean_latency_ms > 0


@pytest.mark.parametrize("conditions", ALL_CONDITIONS, ids=lambda c: c.name)
class TestNetworkSweepInvariants:
    def test_qvr_stable_on_every_network(self, conditions):
        system = make_system(
            "qvr", get_app("HL2-L"), PlatformConfig(network=conditions), seed=2
        )
        result = system.run(n_frames=N_FRAMES, warmup_frames=10)
        assert 5.0 <= result.mean_e1_deg <= 90.0
        assert np.isfinite(result.mean_latency_ms)
        assert result.measured_fps > 30.0


class TestFrequencySweepInvariants:
    @pytest.mark.parametrize("freq", (300.0, 400.0, 500.0))
    def test_local_latency_monotone_in_frequency(self, freq):
        system = make_system(
            "local", get_app("HL2-L"), PlatformConfig().with_gpu_frequency(freq)
        )
        result = system.run(n_frames=30, warmup_frames=5)
        # Stash on the class for the cross-check below.
        TestFrequencySweepInvariants._latencies = getattr(
            TestFrequencySweepInvariants, "_latencies", {}
        )
        TestFrequencySweepInvariants._latencies[freq] = result.mean_latency_ms

    def test_ordering_across_frequencies(self):
        latencies = getattr(TestFrequencySweepInvariants, "_latencies", {})
        if len(latencies) == 3:
            assert latencies[300.0] > latencies[400.0] > latencies[500.0]


class TestSeedSensitivity:
    def test_aggregate_metrics_stable_across_seeds(self):
        """Different seeds shift frames but not the design's character."""
        fps = []
        for seed in (0, 1, 2):
            result = make_system("qvr", get_app("UT3"), seed=seed).run(
                n_frames=80, warmup_frames=20
            )
            fps.append(result.measured_fps)
        spread = (max(fps) - min(fps)) / np.mean(fps)
        assert spread < 0.25
