"""Tests for the multi-user shared-infrastructure extension."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.multiuser import (
    MultiUserScenario,
    simulate_shared_infrastructure,
)
from repro.sim.systems import PlatformConfig


def _scenario(n_clients, app="HL2-L"):
    return MultiUserScenario(apps=(app,) * n_clients, platform=PlatformConfig())


class TestScenario:
    def test_client_count(self):
        assert _scenario(3).n_clients == 3

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiUserScenario(apps=(), platform=PlatformConfig())

    def test_invalid_efficiency(self):
        with pytest.raises(ConfigurationError):
            MultiUserScenario(apps=("GRID",), platform=PlatformConfig(),
                              sharing_efficiency=0.0)

    def test_uniform_factory(self):
        scenario = MultiUserScenario.uniform("GRID", 3)
        assert scenario.n_clients == 3
        assert scenario.apps == ("GRID",) * 3

    def test_uniform_rejects_zero_users(self):
        with pytest.raises(ConfigurationError):
            MultiUserScenario.uniform("GRID", 0)
        with pytest.raises(ConfigurationError):
            MultiUserScenario.uniform("GRID", -2)


class TestSpecSurface:
    def test_scenario_expands_to_one_spec_per_client(self):
        scenario = MultiUserScenario(
            apps=("Doom3-L", "GRID"), platform=PlatformConfig()
        )
        specs = scenario.to_specs(n_frames=50, seed=3)
        assert [s.app for s in specs] == ["Doom3-L", "GRID"]
        assert all(s.shared_clients == 2 for s in specs)
        assert specs[0].seed == 3
        assert specs[1].seed == 3 + 97
        # Frozen specs run through the standard batch engine unchanged.
        from repro.sim.runner import run_batch

        batch = run_batch(specs)
        assert len(batch) == 2

    def test_engine_is_shared(self):
        from repro.sim.runner import BatchEngine

        engine = BatchEngine()
        scenario = _scenario(2)
        first = simulate_shared_infrastructure(scenario, n_frames=50, engine=engine)
        second = simulate_shared_infrastructure(scenario, n_frames=50, engine=engine)
        assert engine.stats.executed == 2  # memoized on the second call
        assert engine.stats.cache_hits == 2
        assert first.mean_latency_ms == second.mean_latency_ms


class TestSharedInfrastructure:
    def test_single_client_matches_solo_platform(self):
        solo = simulate_shared_infrastructure(_scenario(1), n_frames=50)
        assert solo.per_client[0].meets_target_fps

    def test_contention_grows_fovea(self):
        """More co-located users -> degraded share -> bigger local fovea."""
        one = simulate_shared_infrastructure(_scenario(1), n_frames=60)
        four = simulate_shared_infrastructure(_scenario(4), n_frames=60)
        assert four.mean_e1_deg > one.mean_e1_deg

    def test_contention_costs_latency(self):
        one = simulate_shared_infrastructure(_scenario(1), n_frames=60)
        four = simulate_shared_infrastructure(_scenario(4), n_frames=60)
        assert four.mean_latency_ms > one.mean_latency_ms * 0.95

    def test_mixed_titles(self):
        mixed = MultiUserScenario(
            apps=("Doom3-L", "GRID"), platform=PlatformConfig()
        )
        result = simulate_shared_infrastructure(mixed, n_frames=50)
        assert len(result.per_client) == 2
        # The lighter title still keeps the larger fovea under sharing.
        by_app = {r.app: r for r in result.per_client}
        assert by_app["Doom3-L"].mean_e1_deg > by_app["GRID"].mean_e1_deg

    def test_clients_meeting_fps_counts(self):
        result = simulate_shared_infrastructure(_scenario(2), n_frames=50)
        assert 0 <= result.clients_meeting_fps <= 2
