"""Tests for the multi-user shared-infrastructure extension."""

import pytest

from repro.errors import ConfigurationError
from repro.network.conditions import LTE_4G, WIFI
from repro.network.profile import ConstantProfile, PiecewiseProfile
from repro.sim.multiuser import (
    ClientSpec,
    MultiUserScenario,
    simulate_shared_infrastructure,
)
from repro.sim.systems import PlatformConfig


def _scenario(n_clients, app="HL2-L"):
    return MultiUserScenario(apps=(app,) * n_clients, platform=PlatformConfig())


class TestScenario:
    def test_client_count(self):
        assert _scenario(3).n_clients == 3

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiUserScenario(apps=(), platform=PlatformConfig())

    def test_invalid_efficiency(self):
        with pytest.raises(ConfigurationError):
            MultiUserScenario(apps=("GRID",), platform=PlatformConfig(),
                              sharing_efficiency=0.0)

    def test_uniform_factory(self):
        scenario = MultiUserScenario.uniform("GRID", 3)
        assert scenario.n_clients == 3
        assert scenario.apps == ("GRID",) * 3

    def test_uniform_rejects_zero_users(self):
        with pytest.raises(ConfigurationError):
            MultiUserScenario.uniform("GRID", 0)
        with pytest.raises(ConfigurationError):
            MultiUserScenario.uniform("GRID", -2)

    def test_apps_surface_derives_clients(self):
        scenario = MultiUserScenario(apps=("GRID", "Doom3-L"))
        assert scenario.clients == (ClientSpec("GRID"), ClientSpec("Doom3-L"))

    def test_clients_surface_derives_apps(self):
        scenario = MultiUserScenario(
            clients=(ClientSpec("GRID"), ClientSpec("Doom3-L"))
        )
        assert scenario.apps == ("GRID", "Doom3-L")

    def test_bare_strings_promote_to_clients(self):
        scenario = MultiUserScenario(clients=("GRID", "Doom3-L"))
        assert scenario.clients == (ClientSpec("GRID"), ClientSpec("Doom3-L"))

    def test_inconsistent_apps_and_clients_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiUserScenario(apps=("GRID",), clients=(ClientSpec("Doom3-L"),))

    def test_heterogeneous_factory(self):
        scenario = MultiUserScenario.heterogeneous(
            (ClientSpec("GRID", profile="wifi-drop"), "Doom3-L")
        )
        assert scenario.n_clients == 2
        assert scenario.apps == ("GRID", "Doom3-L")


class TestHeterogeneousClients:
    def test_per_client_platform_and_profile_reach_specs(self):
        throttled = PlatformConfig(network=LTE_4G).with_gpu_frequency(300.0)
        drop = PiecewiseProfile.bandwidth_drop(WIFI, 400.0, 600.0, 0.2)
        scenario = MultiUserScenario.heterogeneous(
            (
                ClientSpec("Doom3-H"),
                ClientSpec("GRID", platform=throttled),
                ClientSpec("HL2-L", profile=drop),
            )
        )
        specs = scenario.to_specs(n_frames=50, seed=0)
        assert specs[0].platform == PlatformConfig()
        assert specs[1].platform == throttled
        assert specs[2].platform.network == drop
        assert all(spec.shared_clients == 3 for spec in specs)

    def test_profile_name_coerces(self):
        scenario = MultiUserScenario.heterogeneous(
            (ClientSpec("GRID", profile="4g"),)
        )
        spec = scenario.to_specs(n_frames=50)[0]
        assert spec.platform.network == ConstantProfile(LTE_4G)

    def test_profile_overrides_client_platform_network(self):
        throttled = PlatformConfig(network=LTE_4G)
        client = ClientSpec("GRID", platform=throttled, profile="5g")
        resolved = client.resolved_platform(PlatformConfig())
        assert resolved.network.name == "Early 5G"
        assert resolved.gpu == throttled.gpu

    def test_per_client_system_override(self):
        scenario = MultiUserScenario.heterogeneous(
            (ClientSpec("GRID", system="local"), ClientSpec("GRID"))
        )
        specs = scenario.to_specs(system="qvr", n_frames=50)
        assert [spec.system for spec in specs] == ["local", "qvr"]

    def test_heterogeneous_runs_through_batch_engine_unchanged(self):
        from repro.sim.runner import run_batch

        scenario = MultiUserScenario.heterogeneous(
            (
                ClientSpec("Doom3-L", profile="wifi"),
                ClientSpec("GRID", platform=PlatformConfig().with_gpu_frequency(400.0)),
            )
        )
        specs = scenario.to_specs(n_frames=40, seed=1)
        batch = run_batch(specs)
        assert len(batch) == 2

    def test_private_link_keeps_full_downlink(self):
        """A client on its own link shares the server, not the downlink."""
        scenario = MultiUserScenario.heterogeneous(
            (ClientSpec("Doom3-H"), ClientSpec("GRID", profile="4g"))
        )
        default_spec, private_spec = scenario.to_specs(n_frames=50)
        assert default_spec.shared_downlink
        assert not private_spec.shared_downlink
        private = private_spec.effective_platform()
        # Full 4G capacity: not divided by the session's client count.
        assert private.network.initial_conditions.throughput_mbps == (
            LTE_4G.throughput_mbps
        )
        # The rendering server is still time-shared.
        assert (
            private.server.per_gpu_speedup
            < PlatformConfig().server.per_gpu_speedup
        )
        # The default-link client still pays the downlink division.
        shared = default_spec.effective_platform()
        assert shared.network.throughput_mbps < WIFI.throughput_mbps

    def test_uniform_scenario_shares_the_downlink(self):
        specs = MultiUserScenario.uniform("GRID", 3).to_specs(n_frames=50)
        assert all(spec.shared_downlink for spec in specs)

    def test_heterogeneous_platforms_produce_different_outcomes(self):
        fast = ClientSpec("GRID")
        slow = ClientSpec("GRID", platform=PlatformConfig().with_gpu_frequency(300.0))
        scenario = MultiUserScenario.heterogeneous((fast, slow))
        result = simulate_shared_infrastructure(scenario, n_frames=60)
        fast_result, slow_result = result.per_client
        assert fast_result.mean_latency_ms != slow_result.mean_latency_ms


class TestSpecSurface:
    def test_scenario_expands_to_one_spec_per_client(self):
        scenario = MultiUserScenario(
            apps=("Doom3-L", "GRID"), platform=PlatformConfig()
        )
        specs = scenario.to_specs(n_frames=50, seed=3)
        assert [s.app for s in specs] == ["Doom3-L", "GRID"]
        assert all(s.shared_clients == 2 for s in specs)
        assert specs[0].seed == 3
        assert specs[1].seed == 3 + 97
        # Frozen specs run through the standard batch engine unchanged.
        from repro.sim.runner import run_batch

        batch = run_batch(specs)
        assert len(batch) == 2

    def test_engine_is_shared(self):
        from repro.sim.runner import BatchEngine

        engine = BatchEngine()
        scenario = _scenario(2)
        first = simulate_shared_infrastructure(scenario, n_frames=50, engine=engine)
        second = simulate_shared_infrastructure(scenario, n_frames=50, engine=engine)
        assert engine.stats.executed == 2  # memoized on the second call
        assert engine.stats.cache_hits == 2
        assert first.mean_latency_ms == second.mean_latency_ms


class TestSharedInfrastructure:
    def test_single_client_matches_solo_platform(self):
        solo = simulate_shared_infrastructure(_scenario(1), n_frames=50)
        assert solo.per_client[0].meets_target_fps

    def test_contention_grows_fovea(self):
        """More co-located users -> degraded share -> bigger local fovea."""
        one = simulate_shared_infrastructure(_scenario(1), n_frames=60)
        four = simulate_shared_infrastructure(_scenario(4), n_frames=60)
        assert four.mean_e1_deg > one.mean_e1_deg

    def test_contention_costs_latency(self):
        one = simulate_shared_infrastructure(_scenario(1), n_frames=60)
        four = simulate_shared_infrastructure(_scenario(4), n_frames=60)
        assert four.mean_latency_ms > one.mean_latency_ms * 0.95

    def test_mixed_titles(self):
        mixed = MultiUserScenario(
            apps=("Doom3-L", "GRID"), platform=PlatformConfig()
        )
        result = simulate_shared_infrastructure(mixed, n_frames=50)
        assert len(result.per_client) == 2
        # The lighter title still keeps the larger fovea under sharing.
        by_app = {r.app: r for r in result.per_client}
        assert by_app["Doom3-L"].mean_e1_deg > by_app["GRID"].mean_e1_deg

    def test_clients_meeting_fps_counts(self):
        result = simulate_shared_infrastructure(_scenario(2), n_frames=50)
        assert 0 <= result.clients_meeting_fps <= 2
