"""Integration tests for the seven system designs."""

import math

import numpy as np
import pytest

from repro import constants
from repro.errors import ConfigurationError
from repro.network.conditions import EARLY_5G, LTE_4G
from repro.sim.metrics import paper_fps
from repro.sim.runner import RunSpec, run, run_comparison, speedup_over
from repro.sim.systems import PlatformConfig, SYSTEM_NAMES, make_system
from repro.workloads.apps import get_app

N_FRAMES = 90
WARMUP = 25


@pytest.fixture(scope="module")
def doom3h_results():
    """One shared comparison run for the integration assertions."""
    return run_comparison(
        "Doom3-H",
        systems=("local", "remote", "static", "ffr", "dfr", "sw-qvr", "qvr"),
        n_frames=N_FRAMES,
    )


class TestFactory:
    def test_all_names_constructible(self):
        app = get_app("Doom3-L")
        for name in SYSTEM_NAMES:
            system = make_system(name, app)
            assert system.name == name

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_system("hologram", get_app("Doom3-L"))

    def test_runspec_validation(self):
        with pytest.raises(ConfigurationError):
            RunSpec(system="hologram", app="GRID")
        with pytest.raises(ConfigurationError):
            RunSpec(system="qvr", app="GRID", n_frames=0)

    def test_run_by_spec(self):
        result = run(RunSpec(system="local", app="Doom3-L", n_frames=20, warmup_frames=5))
        assert result.system == "local"
        assert len(result.records) == 20


class TestSchedules:
    def test_records_complete_and_ordered(self, doom3h_results):
        for name, result in doom3h_results.items():
            assert len(result.records) == N_FRAMES, name
            displays = [r.display_ms for r in result.records]
            assert displays == sorted(displays), name

    def test_determinism(self):
        a = make_system("qvr", get_app("UT3"), seed=3).run(n_frames=40)
        b = make_system("qvr", get_app("UT3"), seed=3).run(n_frames=40)
        assert [r.display_ms for r in a.records] == [r.display_ms for r in b.records]
        assert [r.e1_deg for r in a.records] == [r.e1_deg for r in b.records]

    def test_seed_changes_outcome(self):
        a = make_system("qvr", get_app("UT3"), seed=1).run(n_frames=40)
        b = make_system("qvr", get_app("UT3"), seed=2).run(n_frames=40)
        assert [r.display_ms for r in a.records] != [r.display_ms for r in b.records]


class TestLocalOnly:
    def test_no_network_traffic(self, doom3h_results):
        result = doom3h_results["local"]
        assert all(r.transmitted_bytes == 0 for r in result.records)
        assert all(r.net_busy_ms == 0 for r in result.records)

    def test_gpu_bound_fps(self, doom3h_results):
        result = doom3h_results["local"]
        mean_gpu = np.mean([r.gpu_busy_ms for r in result.records[WARMUP:]])
        assert result.measured_fps == pytest.approx(1000.0 / mean_gpu, rel=0.15)

    def test_latency_dominated_by_rendering(self, doom3h_results):
        result = doom3h_results["local"]
        record = result.records[-1]
        assert record.local_ms > 0.5 * record.e2e_latency_ms


class TestRemoteOnly:
    def test_transmission_dominates(self, doom3h_results):
        """Fig. 3b: transmission is ~63 % of the remote-only latency."""
        result = doom3h_results["remote"]
        steady = result.records[WARMUP:]
        share = np.mean([r.net_busy_ms / r.e2e_latency_ms for r in steady])
        assert 0.40 < share < 0.80

    def test_misses_mtp(self, doom3h_results):
        """Remote-only cannot satisfy the 25 ms MTP requirement."""
        assert not doom3h_results["remote"].meets_mtp

    def test_full_frames_transmitted(self, doom3h_results):
        result = doom3h_results["remote"]
        assert result.mean_transmitted_bytes > 400e3


class TestStatic:
    def test_mispredictions_occur(self, doom3h_results):
        result = doom3h_results["static"]
        rate = np.mean([1.0 if r.mispredicted else 0.0 for r in result.records])
        assert 0.02 < rate < 0.6

    def test_transmits_more_than_remote_only(self, doom3h_results):
        """Static adds depth maps on top of the full background."""
        assert (
            doom3h_results["static"].mean_transmitted_bytes
            > doom3h_results["remote"].mean_transmitted_bytes
        )

    def test_fps_network_cadence_bound(self, doom3h_results):
        result = doom3h_results["static"]
        assert result.measured_fps < 60.0


class TestCollaborativeFoveated:
    def test_ffr_keeps_classic_fovea(self, doom3h_results):
        result = doom3h_results["ffr"]
        assert all(
            r.e1_deg == pytest.approx(constants.CLASSIC_FOVEA_ECCENTRICITY_DEG)
            for r in result.records
        )

    def test_qvr_adapts_eccentricity(self, doom3h_results):
        result = doom3h_results["qvr"]
        assert result.mean_e1_deg > constants.CLASSIC_FOVEA_ECCENTRICITY_DEG + 3

    def test_qvr_reaches_balance(self, doom3h_results):
        """Fig. 14a: the steady-state latency ratio settles near 1."""
        ratio = doom3h_results["qvr"].mean_latency_ratio
        assert 0.6 < ratio < 1.6

    def test_qvr_starts_unbalanced(self, doom3h_results):
        """Initialised at e1 = 5: the first frames are network-dominated."""
        ratios = doom3h_results["qvr"].latency_ratios()
        assert ratios[0] > 2.0

    def test_eccentricity_in_legal_range(self, doom3h_results):
        for name in ("dfr", "sw-qvr", "qvr"):
            for r in doom3h_results[name].records:
                assert (
                    constants.MIN_ECCENTRICITY_DEG - 1e-9
                    <= r.e1_deg
                    <= constants.MAX_ECCENTRICITY_DEG + 1e-9
                )

    def test_uca_offloads_gpu(self, doom3h_results):
        """Q-VR's GPU busy time excludes composition/ATW; DFR's includes it."""
        qvr_gpu = doom3h_results["qvr"].records[-1].gpu_busy_ms
        dfr_gpu = doom3h_results["dfr"].records[-1].gpu_busy_ms
        assert qvr_gpu < dfr_gpu
        assert doom3h_results["qvr"].records[-1].uca_busy_ms > 0
        assert doom3h_results["dfr"].records[-1].uca_busy_ms == 0

    def test_qvr_transmits_less_than_remote(self, doom3h_results):
        assert (
            doom3h_results["qvr"].mean_transmitted_bytes
            < 0.4 * doom3h_results["remote"].mean_transmitted_bytes
        )

    def test_resolution_reduction_reported(self, doom3h_results):
        assert 0.1 < doom3h_results["qvr"].mean_resolution_reduction < 0.95


class TestPaperOrdering:
    """The headline ordering of Fig. 12 must hold on every run."""

    def test_design_ordering(self, doom3h_results):
        static = speedup_over(doom3h_results, "static")
        ffr = speedup_over(doom3h_results, "ffr")
        qvr = speedup_over(doom3h_results, "qvr")
        assert static < ffr < qvr

    def test_dfr_at_least_ffr(self, doom3h_results):
        assert speedup_over(doom3h_results, "dfr") >= speedup_over(
            doom3h_results, "ffr"
        ) * 0.98

    def test_qvr_meets_mtp(self, doom3h_results):
        assert doom3h_results["qvr"].meets_mtp

    def test_qvr_fps_above_target(self, doom3h_results):
        assert doom3h_results["qvr"].measured_fps > constants.TARGET_FPS

    def test_qvr_fps_beats_software(self, doom3h_results):
        assert (
            doom3h_results["qvr"].measured_fps
            > 1.3 * doom3h_results["sw-qvr"].measured_fps
        )

    def test_qvr_fps_beats_static(self, doom3h_results):
        assert (
            doom3h_results["qvr"].measured_fps
            > 2.0 * doom3h_results["static"].measured_fps
        )


class TestNetworkSensitivity:
    def test_slower_network_grows_fovea(self):
        app = get_app("HL2-H")
        lte = make_system("qvr", app, PlatformConfig(network=LTE_4G)).run(n_frames=N_FRAMES)
        fiveg = make_system("qvr", app, PlatformConfig(network=EARLY_5G)).run(n_frames=N_FRAMES)
        assert lte.mean_e1_deg > fiveg.mean_e1_deg

    def test_slower_gpu_shrinks_fovea(self):
        app = get_app("HL2-H")
        fast = make_system("qvr", app, PlatformConfig().with_gpu_frequency(500)).run(
            n_frames=N_FRAMES
        )
        slow = make_system("qvr", app, PlatformConfig().with_gpu_frequency(300)).run(
            n_frames=N_FRAMES
        )
        assert slow.mean_e1_deg < fast.mean_e1_deg

    def test_lighter_app_bigger_fovea(self):
        light = make_system("qvr", get_app("Doom3-L")).run(n_frames=N_FRAMES)
        heavy = make_system("qvr", get_app("GRID")).run(n_frames=N_FRAMES)
        assert light.mean_e1_deg > heavy.mean_e1_deg


class TestPaperFPSFormula:
    def test_min_of_bounds(self):
        assert paper_fps(10.0, 5.0) == pytest.approx(100.0)
        assert paper_fps(5.0, 10.0) == pytest.approx(100.0)

    def test_zero_busy_unbounded(self):
        assert math.isinf(paper_fps(0.0, 0.0))

    def test_single_bound(self):
        assert paper_fps(4.0, 0.0) == pytest.approx(250.0)
