"""Span nesting, deterministic IDs, and tracer lifecycle."""

from __future__ import annotations

import json

import pytest

from repro.obs import metrics, sinks, trace


@pytest.fixture
def tracer(tmp_path):
    t = trace.configure(tmp_path / "t", process="parent")
    yield t
    trace.shutdown()


def _events(trace_dir):
    events, snapshots = sinks.merge_trace_dir(trace_dir)
    return events, snapshots


def test_null_tracer_is_free_and_reusable():
    trace.shutdown()
    t = trace.active()
    assert not t.enabled and t.directory is None
    span = t.span("anything", key=("k",), attr=1)
    with span:
        t.instant("tick", n=1)
    # The null span is one shared object; nothing was recorded anywhere.
    assert t.span("other") is span


def test_deterministic_ids_are_stable_and_key_sensitive():
    a = trace.deterministic_id("shard.execute", (3, "spec"))
    b = trace.deterministic_id("shard.execute", (3, "spec"))
    c = trace.deterministic_id("shard.execute", (4, "spec"))
    d = trace.deterministic_id("other", (3, "spec"))
    assert a == b
    assert len({a, c, d}) == 3
    assert len(a) == 16 and int(a, 16) >= 0


def test_keyed_span_id_is_identical_across_tracer_instances(tmp_path):
    first = trace.configure(tmp_path / "one", process="parent")
    with first.span("work", key=("spec", 7)):
        pass
    trace.shutdown()
    second = trace.configure(tmp_path / "two", process="worker-3")
    with second.span("work", key=("spec", 7)):
        pass
    trace.shutdown()
    ids = []
    for sub in ("one", "two"):
        events, _ = _events(tmp_path / sub)
        ids.append([e["id"] for e in events if e["kind"] == "span_begin"])
    # Same logical work -> same ID, regardless of process or directory.
    assert ids[0] == ids[1]


def test_span_nesting_records_parent_links(tracer, tmp_path):
    with tracer.span("outer", key=("o",)):
        with tracer.span("inner", key=("i",)):
            tracer.instant("leaf", key=("l",))
    trace.shutdown()
    events, _ = _events(tmp_path / "t")
    by_name = {e["name"]: e for e in events if e["kind"] != "span_end"}
    outer_id = trace.deterministic_id("outer", ("o",))
    inner_id = trace.deterministic_id("inner", ("i",))
    assert "parent" not in by_name["outer"]
    assert by_name["inner"]["parent"] == outer_id
    assert by_name["leaf"]["parent"] == inner_id
    # spans() pairs each begin with its end.
    paired = {begin["name"] for begin, _ in trace.spans(events)}
    assert paired == {"outer", "inner"}


def test_span_attrs_ride_on_the_begin_record(tracer, tmp_path):
    with tracer.span("stage", key=("s",), shard=2, mode="pool"):
        pass
    trace.shutdown()
    events, _ = _events(tmp_path / "t")
    begin = next(e for e in events if e["kind"] == "span_begin")
    assert begin["attrs"] == {"shard": 2, "mode": "pool"}


def test_unkeyed_spans_get_unique_sequential_ids(tracer, tmp_path):
    with tracer.span("pass"):
        pass
    with tracer.span("pass"):
        pass
    trace.shutdown()
    events, _ = _events(tmp_path / "t")
    ids = [e["id"] for e in events if e["kind"] == "span_begin"]
    assert len(ids) == 2 and ids[0] != ids[1]


def test_shutdown_flushes_metrics_snapshot(tmp_path):
    tracer = trace.configure(tmp_path / "t", process="parent")
    assert metrics.enabled()
    metrics.counter("work.done").inc(3)
    tracer.instant("tick")
    trace.shutdown()
    assert not metrics.enabled()
    _, snapshots = _events(tmp_path / "t")
    assert snapshots and snapshots[-1]["counters"] == {"work.done": 3}


def test_configure_within_process_flushes_previous_stream(tmp_path):
    trace.configure(tmp_path / "t", process="parent")
    metrics.counter("first").inc()
    trace.configure(tmp_path / "t", process="second")
    metrics.counter("second").inc()
    trace.shutdown()
    _, snapshots = _events(tmp_path / "t")
    merged = metrics.merge_snapshots(snapshots)
    # Both generations flushed; the re-configure reset the registry so
    # the first counter is not double-counted into the second snapshot.
    assert merged["counters"] == {"first": 1, "second": 1}


def test_ensure_is_idempotent_and_noop_without_directory(tmp_path):
    assert trace.ensure(None) is trace.active()
    first = trace.ensure(tmp_path / "t", process="w")
    assert first.enabled
    assert trace.ensure(tmp_path / "t") is first
    trace.shutdown()


def test_process_names_are_sanitized_for_filenames(tmp_path):
    tracer = trace.configure(tmp_path / "t", process="worker 1/of 2")
    tracer.instant("tick")
    trace.shutdown()
    files = sinks.trace_files(tmp_path / "t")
    assert [p.name for p in files] == ["worker-1-of-2.jsonl"]


def test_anchor_record_carries_paired_clock_sample(tracer, tmp_path):
    trace.shutdown()
    raw = sinks.read_events(sinks.trace_files(tmp_path / "t")[0])
    anchor = raw[0]
    assert anchor["kind"] == "process"
    assert {"proc", "pid", "wall_s", "mono_s"} <= set(anchor)
    # Every record is compact single-line JSON.
    text = sinks.trace_files(tmp_path / "t")[0].read_text()
    for line in text.splitlines():
        assert json.loads(line)
