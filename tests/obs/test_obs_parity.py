"""Bit-parity: tracing must never perturb results, at any shard count."""

from __future__ import annotations

import json

import pytest

from repro.obs import report, trace
from repro.sim.demand import DemandScenario, run_population
from repro.sim.runner import BatchEngine


def _scenario():
    return DemandScenario.from_payload(
        {
            "name": "parity-town",
            "horizon_ms": 200_000,
            "arrivals": {"process": "poisson", "rate_per_min": 3.0},
            "party_sizes": {"1": 0.6, "2": 0.4},
            "duration_frames": {"min": 8, "max": 10},
            "clients": [
                {"app": "GRID", "share": 1.0},
                {"app": "UT3", "share": 1.0},
            ],
            "profiles": {"default": 3.0, "lte": 1.0},
            "churn": {"late_join": 0.2, "leave": 0.2, "switch": 0.1},
            "fleet": {"servers": {"east": 2}, "placement": "least-loaded"},
            "policies": ["fair-share"],
            "slo": {"p99_fps_floor": 45.0},
        }
    )


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@pytest.mark.parametrize("shards", [None, 1, 4])
def test_population_report_is_bit_identical_with_tracing(tmp_path, shards):
    scenario = _scenario()
    kwargs = {"seed": 7, "max_sessions": 6}

    baseline = run_population(
        scenario, engine=BatchEngine(shards=shards), **kwargs
    )

    trace.configure(tmp_path / "t", process="parent")
    try:
        traced = run_population(
            scenario, engine=BatchEngine(shards=shards), **kwargs
        )
    finally:
        trace.shutdown()

    assert _canonical(traced) == _canonical(baseline)
    # The traced run actually recorded something.
    events, merged = report.load_trace(tmp_path / "t")
    names = {event["name"] for event in events}
    assert "population.policy" in names
    assert merged["counters"].get("population.executed.fair-share", 0) > 0


def test_traced_pool_workers_produce_mergeable_streams(tmp_path):
    scenario = _scenario()
    kwargs = {"seed": 7, "max_sessions": 6}
    baseline = run_population(scenario, engine=BatchEngine(), **kwargs)
    trace.configure(tmp_path / "t", process="parent")
    try:
        traced = run_population(
            scenario,
            engine=BatchEngine(jobs=2, shards=2, shard_mode="process"),
            **kwargs,
        )
    finally:
        trace.shutdown()
    assert _canonical(traced) == _canonical(baseline)
    events, merged = report.load_trace(tmp_path / "t")
    # Worker processes re-anchored into their own per-PID streams and
    # their execute spans merged alongside the parent's.
    procs = {event["proc"] for event in events}
    assert "parent" in procs
    executes = [e for e in events if e["name"] == "shard.execute"]
    assert executes and all(e["kind"] in ("span_begin", "span_end")
                            for e in executes)
