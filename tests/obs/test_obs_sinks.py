"""JSONL salvage, cross-process merge, and Chrome trace export."""

from __future__ import annotations

import json

from repro.obs import sinks


def _write_jsonl(path, records, tail=""):
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        fh.write(tail)


def _anchor(proc, wall_s, mono_s=0.0, pid=1):
    return {
        "kind": "process", "proc": proc, "pid": pid,
        "wall_s": wall_s, "mono_s": mono_s,
    }


def _instant(name, mono_s, **attrs):
    record = {"kind": "instant", "id": name, "name": name, "mono_s": mono_s}
    if attrs:
        record["attrs"] = attrs
    return record


def test_read_events_salvages_torn_tail(tmp_path):
    path = tmp_path / "w.jsonl"
    records = [_anchor("w", 10.0), _instant("a", 1.0), _instant("b", 2.0)]
    _write_jsonl(path, records, tail='{"kind":"instant","id":"c"')
    salvaged = sinks.read_events(path)
    assert [r.get("id") for r in salvaged] == [None, "a", "b"]


def test_read_events_stops_at_corrupt_middle_line(tmp_path):
    path = tmp_path / "w.jsonl"
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(_anchor("w", 10.0)) + "\n")
        fh.write("not json at all\n")
        fh.write(json.dumps(_instant("late", 9.0)) + "\n")
    # Append-only contract: nothing after the first bad frame is trusted.
    assert len(sinks.read_events(path)) == 1


def test_read_events_missing_file_is_empty(tmp_path):
    assert sinks.read_events(tmp_path / "absent.jsonl") == []


def test_merge_reconciles_per_process_clock_offsets(tmp_path):
    # Two workers whose monotonic clocks started at different origins
    # but whose anchors pin the same wall instant.
    _write_jsonl(
        tmp_path / "a.jsonl",
        [_anchor("a", wall_s=100.0, mono_s=0.0), _instant("first", 1.0)],
    )
    _write_jsonl(
        tmp_path / "b.jsonl",
        [_anchor("b", wall_s=100.0, mono_s=50.0), _instant("second", 50.5)],
    )
    events, _ = sinks.merge_trace_dir(tmp_path)
    assert [e["name"] for e in events] == ["second", "first"]
    assert [e["ts_s"] for e in events] == [100.5, 101.0]
    assert [e["proc"] for e in events] == ["b", "a"]


def test_merge_collects_metrics_snapshots(tmp_path):
    _write_jsonl(
        tmp_path / "w.jsonl",
        [
            _anchor("w", 10.0),
            {"kind": "metrics", "proc": "w", "snapshot": {"counters": {"n": 2}}},
        ],
    )
    _, snapshots = sinks.merge_trace_dir(tmp_path)
    assert snapshots == [{"counters": {"n": 2}}]


def test_merge_drops_events_before_anchor(tmp_path):
    _write_jsonl(
        tmp_path / "w.jsonl",
        [_instant("orphan", 1.0), _anchor("w", 10.0), _instant("kept", 2.0)],
    )
    events, _ = sinks.merge_trace_dir(tmp_path)
    assert [e["name"] for e in events] == ["kept"]


def test_merge_missing_directory_is_empty(tmp_path):
    events, snapshots = sinks.merge_trace_dir(tmp_path / "nope")
    assert events == [] and snapshots == []


def test_chrome_trace_round_trips_spans_and_instants(tmp_path):
    _write_jsonl(
        tmp_path / "t" / "w.jsonl",
        [
            _anchor("w", 100.0),
            {"kind": "span_begin", "id": "s1", "name": "work", "mono_s": 1.0},
            _instant("tick", 1.5, shard=3),
            {"kind": "span_end", "id": "s1", "name": "work", "mono_s": 2.0},
        ],
    )
    events, _ = sinks.merge_trace_dir(tmp_path / "t")
    out = tmp_path / "chrome.json"
    sinks.write_chrome_trace(events, out, counters={"n": 1})
    payload = json.loads(out.read_text())
    phases = [e["ph"] for e in payload["traceEvents"]]
    assert phases == ["M", "B", "i", "E"]
    begin = payload["traceEvents"][1]
    end = payload["traceEvents"][3]
    assert end["ts"] - begin["ts"] == 1e6  # 1 s span in microseconds
    assert payload["traceEvents"][2]["args"] == {"shard": 3}
    assert payload["metadata"] == {"obs.counters": {"n": 1}}


def test_chrome_trace_keeps_unfinished_span_open(tmp_path):
    # A SIGKILLed worker leaves a begin with no end; the export keeps
    # the B event so Perfetto renders the span as unfinished.
    _write_jsonl(
        tmp_path / "t" / "w.jsonl",
        [
            _anchor("w", 100.0),
            {"kind": "span_begin", "id": "s1", "name": "doomed", "mono_s": 1.0},
        ],
    )
    events, _ = sinks.merge_trace_dir(tmp_path / "t")
    out = tmp_path / "chrome.json"
    sinks.write_chrome_trace(events, out)
    payload = json.loads(out.read_text())
    assert [e["ph"] for e in payload["traceEvents"]] == ["M", "B"]
