"""Unit tests for the obs metrics instruments and snapshot merge."""

from __future__ import annotations

import itertools

import pytest

from repro.obs import metrics


@pytest.fixture
def live_registry():
    metrics.deactivate()
    registry = metrics.activate()
    yield registry
    metrics.deactivate()


def _snapshot_with(counts: dict[str, int]) -> dict:
    registry = metrics.MetricsRegistry()
    for name, value in counts.items():
        registry.counter(name).inc(value)
    return registry.snapshot()


def test_disabled_accessors_are_shared_null_instruments():
    metrics.deactivate()
    assert not metrics.enabled()
    assert metrics.counter("a") is metrics.counter("b")
    assert metrics.gauge("a") is metrics.gauge("b")
    assert metrics.histogram("a") is metrics.histogram("b")
    # No-ops never raise and never record anything.
    metrics.counter("a").inc(5)
    metrics.gauge("a").set(1.0)
    metrics.histogram("a").observe(2.0)
    assert metrics.registry().snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {},
    }


def test_live_registry_memoizes_and_snapshots(live_registry):
    counter = metrics.counter("hits")
    assert metrics.counter("hits") is counter
    counter.inc()
    counter.inc(4)
    metrics.gauge("slo").set(0.75)
    for value in (1.0, 2.0, 4.0):
        metrics.histogram("lat").observe(value)
    snapshot = live_registry.snapshot()
    assert snapshot["counters"] == {"hits": 5}
    assert snapshot["gauges"] == {"slo": {"value": 0.75, "updates": 1}}
    hist = snapshot["histograms"]["lat"]
    assert hist["count"] == 3
    assert hist["min"] == 1.0 and hist["max"] == 4.0


def test_counter_merge_is_associative_in_any_order():
    parts = [
        _snapshot_with({"x": 3, "y": 1}),
        _snapshot_with({"x": 4}),
        _snapshot_with({"y": 2, "z": 7}),
    ]
    merged = [
        metrics.merge_snapshots(list(order))["counters"]
        for order in itertools.permutations(parts)
    ]
    assert all(m == {"x": 7, "y": 3, "z": 7} for m in merged)
    # Re-associating through a partial merge gives the same totals.
    partial = metrics.merge_snapshots(parts[:2])
    assert metrics.merge_snapshots([partial, parts[2]])["counters"] == merged[0]


def test_gauge_merge_is_order_independent():
    a = metrics.MetricsRegistry()
    a.gauge("slo").set(0.2)
    a.gauge("slo").set(0.4)
    b = metrics.MetricsRegistry()
    b.gauge("slo").set(0.9)
    fwd = metrics.merge_snapshots([a.snapshot(), b.snapshot()])
    rev = metrics.merge_snapshots([b.snapshot(), a.snapshot()])
    # The gauge with more updates wins regardless of fold order.
    assert fwd["gauges"]["slo"] == {"value": 0.4, "updates": 2}
    assert fwd == rev


def test_histogram_merge_matches_single_stream():
    lhs, rhs, whole = (
        metrics.MetricsRegistry(), metrics.MetricsRegistry(),
        metrics.MetricsRegistry(),
    )
    values = [0.5, 1.5, 3.0, 8.0, 21.0, 55.0]
    for value in values[:3]:
        lhs.histogram("lat").observe(value)
        whole.histogram("lat").observe(value)
    for value in values[3:]:
        rhs.histogram("lat").observe(value)
        whole.histogram("lat").observe(value)
    merged = metrics.merge_snapshots([lhs.snapshot(), rhs.snapshot()])
    expected = whole.snapshot()["histograms"]["lat"]
    got = merged["histograms"]["lat"]
    assert got["count"] == expected["count"] == len(values)
    assert got["min"] == expected["min"]
    assert got["max"] == expected["max"]
    assert got["mean"] == pytest.approx(expected["mean"])
    assert got["sketch"] == expected["sketch"]
