"""Stage breakdown, utilization, HTML timeline, and report rendering."""

from __future__ import annotations

import json

from repro.obs import report, trace


def _record_sample_trace(trace_dir):
    tracer = trace.configure(trace_dir, process="parent")
    with tracer.span("batch.run_specs", key=("b",), requested=2):
        with tracer.span("shard.execute", key=(0, "spec-a")):
            pass
        with tracer.span("shard.execute", key=(1, "spec-b")):
            pass
        tracer.instant("shard.steal", key=("steal", 1))
    trace.shutdown()


def test_stage_rows_aggregate_per_name(tmp_path):
    _record_sample_trace(tmp_path / "t")
    events, merged = report.load_trace(tmp_path / "t")
    rows = {row[0]: row for row in report.stage_rows(events)}
    assert rows["shard.execute"][1] == 2
    assert rows["batch.run_specs"][1] == 1
    # total_s and quantiles are non-negative and internally consistent
    # (the log-binned sketch has ~2% relative quantile error).
    for row in rows.values():
        name, count, total_s, mean_ms, p50, p99, max_ms = row
        assert total_s >= 0.0 and p50 <= p99 <= max_ms * 1.05 + 1e-9


def test_utilization_counts_only_top_level_spans(tmp_path):
    _record_sample_trace(tmp_path / "t")
    events, _ = report.load_trace(tmp_path / "t")
    rows = report.utilization_rows(events)
    assert [row[0] for row in rows] == ["parent"]
    proc, count, extent_s, busy_s, util = rows[0]
    # Nested shard.execute time must not double-count into busy_s.
    assert busy_s <= extent_s + 1e-9
    assert count == len(events)


def test_render_report_has_all_sections(tmp_path):
    _record_sample_trace(tmp_path / "t")
    text = report.render_report(tmp_path / "t")
    assert "Stage latency breakdown" in text
    assert "Process utilization" in text
    assert "shard.execute" in text


def test_render_report_empty_directory(tmp_path):
    text = report.render_report(tmp_path / "empty")
    assert "no trace events found" in text


def test_export_chrome_trace_counts_events(tmp_path):
    _record_sample_trace(tmp_path / "t")
    out = tmp_path / "chrome.json"
    count = report.export_chrome_trace(tmp_path / "t", out)
    payload = json.loads(out.read_text())
    # count covers timeline events; the payload adds metadata entries.
    assert count == 7  # 3 begins + 3 ends + 1 instant
    assert len(payload["traceEvents"]) == count + 1  # + process_name meta
    assert payload["traceEvents"][0]["ph"] == "M"


def test_render_html_is_standalone_and_escaped(tmp_path):
    _record_sample_trace(tmp_path / "t")
    page = report.render_html(tmp_path / "t")
    assert page.startswith("<!doctype html>")
    assert page.rstrip().endswith("</html>")
    assert 'class="span"' in page and 'class="instant"' in page
    assert "shard.execute" in page


def test_render_html_empty_directory(tmp_path):
    page = report.render_html(tmp_path / "none")
    assert "no trace events found" in page
