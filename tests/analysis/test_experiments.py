"""Tests for the experiment harness (short runs) and report rendering."""

import numpy as np
import pytest

from repro.analysis.calibration import ANCHORS, within_band
from repro.analysis.experiments import (
    SIM_EXPERIMENTS,
    default_churn_session,
    default_failover_session,
    default_netdrop_profile,
    failover_recovery,
    fig15_energy,
    fig3_motivation,
    fig5_interaction_latency,
    fig6_foveal_sizing,
    fig14_balancing,
    netdrop_adaptation,
    overhead_analysis,
    session_churn,
    table1_static_characterization,
    table4_eccentricity,
)
from repro.analysis.report import format_series, format_table
from repro.errors import ConfigurationError
from repro.network.conditions import WIFI
from repro.sim.runner import BatchEngine
from repro.workloads.tethered import TABLE1_ORDER


class TestCalibrationAnchors:
    def test_anchor_bands_contain_paper_values(self):
        for anchor in ANCHORS.values():
            assert anchor.low <= anchor.paper_value <= anchor.high, anchor.name

    def test_within_band(self):
        assert within_band("qvr_avg_speedup", 3.4)
        assert not within_band("qvr_avg_speedup", 0.5)

    def test_unknown_anchor(self):
        with pytest.raises(KeyError):
            within_band("warp_speed", 1.0)


class TestFig3:
    def test_rows_cover_table1_apps(self):
        local_rows, remote_rows = fig3_motivation()
        assert [r.app for r in local_rows] == list(TABLE1_ORDER)
        assert [r.app for r in remote_rows] == list(TABLE1_ORDER)

    def test_local_has_no_network_terms(self):
        local_rows, _ = fig3_motivation()
        assert all(r.transmit_ms == 0 and r.sending_ms == 0 for r in local_rows)

    def test_remote_transmit_share_band(self):
        _, remote_rows = fig3_motivation()
        share = np.mean([r.transmit_share for r in remote_rows])
        assert ANCHORS["remote_transmit_share"].check(float(share))


class TestTable1:
    def test_back_sizes_match_paper_band(self):
        rows = table1_static_characterization(n_frames=150)
        for row in rows:
            assert 400 < row.back_size_kb < 700, row.app

    def test_remote_times_match_paper_band(self):
        rows = table1_static_characterization(n_frames=150)
        for row in rows:
            assert 25 < row.remote_ms < 45, row.app

    def test_local_stats_ordered(self):
        for row in table1_static_characterization(n_frames=150):
            assert row.min_local_ms <= row.avg_local_ms <= row.max_local_ms


class TestFig5:
    def test_nature_span(self):
        points = fig5_interaction_latency("Nature", (0.0, 1.0))
        assert points[0][1] < 13
        assert points[1][1] > 24

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            fig5_interaction_latency("DOOM Eternal")


class TestFig6:
    def test_budget_holds_at_fifteen_degrees(self):
        rows = fig6_foveal_sizing(e1_values_deg=(5, 10, 15))
        assert all(r.local_latency_ms <= 11.2 for r in rows)

    def test_three_scenes_present(self):
        rows = fig6_foveal_sizing(e1_values_deg=(10,))
        assert len({r.scene for r in rows}) == 3


class TestFig14:
    def test_short_run_converges(self):
        series = fig14_balancing(n_frames=120)
        for s in series:
            late = float(np.nanmean(s.latency_ratios[-30:]))
            assert 0.5 < late < 2.0, s.app


class TestTable4:
    def test_single_cell_sweep(self):
        cells = table4_eccentricity(
            n_frames=60, frequencies=(500.0,), networks=(WIFI,), apps=("Doom3-L",)
        )
        assert len(cells) == 1
        cell = cells[0]
        assert cell.app == "Doom3-L"
        assert 5.0 <= cell.mean_e1_deg <= 90.0


class TestOverheads:
    def test_reports_present(self):
        reports = overhead_analysis()
        assert set(reports) == {"LIWC", "UCA"}


class TestBatchEngineRouting:
    def test_sim_experiments_registry_is_complete(self):
        assert set(SIM_EXPERIMENTS) == {
            "fig12", "fig13", "fig14", "table4", "fig15", "netdrop",
            "admission", "churn", "failover",
        }

    def test_table4_and_fig15_share_their_qvr_grid(self):
        """Fig. 15's Q-VR cells are spec-identical to Table 4's runs."""
        engine = BatchEngine()
        kwargs = dict(
            n_frames=40, frequencies=(500.0,), networks=(WIFI,), apps=("Doom3-L",)
        )
        table4_eccentricity(engine=engine, **kwargs)
        executed_after_table4 = engine.stats.executed
        fig15_energy(engine=engine, **kwargs)
        # Only the local baseline is new; the qvr cell comes from the memo.
        assert engine.stats.executed == executed_after_table4 + 1
        assert engine.stats.cache_hits == 1

    def test_explicit_engine_matches_default_path(self):
        engine = BatchEngine()
        via_engine = fig14_balancing(n_frames=60, engine=engine)
        default = fig14_balancing(n_frames=60)
        assert via_engine == default


class TestNetDrop:
    def test_rows_cover_apps_and_windows(self):
        rows = netdrop_adaptation(n_frames=160, apps=("GRID",))
        assert [row.window for row in rows] == ["before", "drop", "after"]
        assert all(row.app == "GRID" for row in rows)
        assert sum(row.frames for row in rows) == 160

    def test_paper_predicted_adaptation(self):
        """Eccentricity grows and the remote share shrinks in the window."""
        rows = {row.window: row for row in netdrop_adaptation(n_frames=160, apps=("GRID",))}
        assert rows["drop"].mean_e1_deg > rows["before"].mean_e1_deg
        assert rows["drop"].mean_kb_per_frame < rows["before"].mean_kb_per_frame
        assert rows["drop"].measured_fps < rows["before"].measured_fps
        assert rows["after"].mean_e1_deg < rows["drop"].mean_e1_deg

    def test_default_profile_scales_with_frames(self):
        short = default_netdrop_profile(100)
        long = default_netdrop_profile(300)
        assert short.boundaries_ms[0] < long.boundaries_ms[0]
        assert short.segments[0][1] == WIFI

    def test_custom_profile_windows(self):
        from repro.network.profile import PiecewiseProfile

        profile = PiecewiseProfile.bandwidth_drop(WIFI, 300.0, 400.0, 0.2)
        rows = netdrop_adaptation(n_frames=120, apps=("Doom3-L",), profile=profile)
        assert len(rows) == 3

    def test_deterministic_and_cacheable(self):
        engine = BatchEngine()
        first = netdrop_adaptation(n_frames=120, apps=("GRID",), engine=engine)
        second = netdrop_adaptation(n_frames=120, apps=("GRID",), engine=engine)
        assert first == second
        assert engine.stats.executed == 1
        assert engine.stats.cache_hits == 1


class TestChurn:
    """The churn experiment's acceptance prediction (re-admission)."""

    def test_queued_joiner_starts_late_and_renders(self):
        rows = session_churn(n_frames=120)
        joiners = [r for r in rows if r.role == "joiner"]
        assert len(joiners) == 2  # one per policy
        for row in joiners:
            assert row.start_ms > row.joined_ms > 0
            assert row.frames > 0
            assert np.isfinite(row.mean_fps)

    def test_deadline_re_admission_protects_the_incumbent_tail(self):
        """Deadline keeps the surviving incumbent's drop-window p99 FPS
        above fair-share while the promoted client contends mid-drop."""
        rows = session_churn(n_frames=120)
        p99 = {
            r.policy: r.window_p99_fps
            for r in rows
            if r.role == "incumbent"
        }
        assert p99["deadline"] > p99["fair-share"]

    def test_leaver_stops_early(self):
        rows = session_churn(n_frames=120, policies=("fair-share",))
        leaver = next(r for r in rows if r.role == "leaver")
        incumbent = next(r for r in rows if r.role == "incumbent")
        assert leaver.frames < incumbent.frames

    def test_sessions_share_one_batch(self):
        engine = BatchEngine()
        first = session_churn(n_frames=120, engine=engine)
        second = session_churn(n_frames=120, engine=engine)
        # repr-compare: the leaver's window p99 is NaN (it departs before
        # the churn window opens), and NaN != NaN under field equality.
        assert repr(first) == repr(second)
        assert engine.stats.cache_hits == engine.stats.executed == 6

    def test_canonical_session_queues_the_joiner(self):
        session = default_churn_session(120)
        timeline = session.timeline(n_frames=120)
        assert timeline.epochs[1].queued == (2,)
        assert timeline.client(2).start_ms > timeline.client(2).joined_ms

    def test_rejects_non_step_traces(self):
        from repro.network.profile import TraceProfile

        bad = TraceProfile(
            base=WIFI,
            times_ms=(0.0, 100.0),
            throughput_mbps=(100.0, 50.0),
        )
        with pytest.raises(ValueError):
            session_churn(n_frames=60, trace=bad)


class TestFailover:
    """The failover experiment's acceptance prediction (migration)."""

    def test_migration_beats_naive_requeue_on_the_displaced_tail(self):
        rows = failover_recovery(n_frames=120)
        displaced = {
            r.mode: r for r in rows if r.role == "displaced"
        }
        assert set(displaced) == {"least-loaded", "requeue"}
        assert displaced["least-loaded"].migrations == 1
        assert displaced["requeue"].migrations == 0
        assert displaced["requeue"].servers.endswith("~")
        assert (
            displaced["least-loaded"].window_p99_fps
            > displaced["requeue"].window_p99_fps
        )

    def test_incumbent_pays_a_bounded_contention_tax(self):
        """Hosting the refugee costs the incumbent some throughput, but it
        keeps rendering (migration does not starve the survivor)."""
        rows = failover_recovery(n_frames=120)
        incumbents = {r.mode: r for r in rows if r.role == "incumbent"}
        assert incumbents["least-loaded"].mean_fps > 0
        assert (
            incumbents["least-loaded"].window_p99_fps
            <= incumbents["requeue"].window_p99_fps
        )

    def test_rows_cover_every_mode_and_client(self):
        rows = failover_recovery(n_frames=120)
        assert len(rows) == 4
        assert {(r.mode, r.client) for r in rows} == {
            ("least-loaded", 0), ("least-loaded", 1),
            ("requeue", 0), ("requeue", 1),
        }

    def test_sessions_share_one_batch(self):
        engine = BatchEngine()
        first = failover_recovery(n_frames=120, engine=engine)
        second = failover_recovery(n_frames=120, engine=engine)
        assert first == second
        assert engine.stats.cache_hits == engine.stats.executed == 4

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            default_failover_session(60, mode="coinflip")

    def test_canonical_session_fails_the_heavy_server(self):
        timeline = default_failover_session(120).timeline(n_frames=120)
        assert timeline.epochs[0].server_of(1) == "b"
        assert timeline.epochs[1].server_of(1) == "a"


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2.5], ["x", "yy"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5

    def test_format_table_bad_row(self):
        with pytest.raises(ConfigurationError):
            format_table(["a"], [[1, 2]])

    def test_format_table_bool_rendering(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_format_series(self):
        text = format_series("ratios", [1.0, 2.0, 3.0], per_line=2)
        assert text.startswith("ratios:")
        assert len(text.splitlines()) == 3
