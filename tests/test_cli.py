"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.app == "Doom3-H"
        assert args.systems == ["local", "static", "qvr"]

    def test_compare_custom(self):
        args = build_parser().parse_args(
            ["compare", "--app", "GRID", "--systems", "local", "qvr",
             "--network", "4G LTE", "--freq", "300"]
        )
        assert args.app == "GRID"
        assert args.freq == 300.0

    def test_invalid_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--systems", "warpdrive"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_overheads_command(self, capsys):
        assert main(["overheads"]) == 0
        out = capsys.readouterr().out
        assert "LIWC" in out and "UCA" in out

    def test_compare_command(self, capsys):
        code = main(
            ["compare", "--app", "Doom3-L", "--systems", "local", "qvr",
             "--frames", "30"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "qvr" in out and "latency" in out

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        assert "Foveated3D" in capsys.readouterr().out


class TestBatchCommand:
    def test_batch_defaults_to_all_sim_experiments(self):
        args = build_parser().parse_args(["batch"])
        assert args.experiments == ["fig12", "fig13", "fig14", "fig15", "table4"]
        assert args.jobs == 1
        assert args.cache_dir is None

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["batch", "--experiments", "fig99"])

    def test_batch_command_runs_and_reports_stats(self, capsys):
        code = main(["batch", "--experiments", "fig13", "--frames", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig13" in out
        assert "cache hits" in out

    def test_batch_command_with_cache_dir(self, capsys, tmp_path):
        argv = [
            "batch", "--experiments", "fig13", "--frames", "40",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "28 executed, 0 cache hits" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 executed, 28 cache hits" in second
