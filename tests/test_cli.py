"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_client, build_parser, main
from repro.errors import ConfigurationError


class TestParser:
    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.app == "Doom3-H"
        assert args.systems == ["local", "static", "qvr"]

    def test_compare_custom(self):
        args = build_parser().parse_args(
            ["compare", "--app", "GRID", "--systems", "local", "qvr",
             "--network", "4G LTE", "--freq", "300"]
        )
        assert args.app == "GRID"
        assert args.freq == 300.0

    def test_invalid_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--systems", "warpdrive"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_overheads_command(self, capsys):
        assert main(["overheads"]) == 0
        out = capsys.readouterr().out
        assert "LIWC" in out and "UCA" in out

    def test_compare_command(self, capsys):
        code = main(
            ["compare", "--app", "Doom3-L", "--systems", "local", "qvr",
             "--frames", "30"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "qvr" in out and "latency" in out

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        assert "Foveated3D" in capsys.readouterr().out


class TestBatchCommand:
    def test_batch_defaults_to_all_sim_experiments(self):
        args = build_parser().parse_args(["batch"])
        assert args.experiments == [
            "admission", "churn", "failover", "fig12", "fig13", "fig14",
            "fig15", "netdrop", "table4",
        ]
        assert args.jobs == 1
        assert args.cache_dir is None

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["batch", "--experiments", "fig99"])

    def test_batch_command_runs_and_reports_stats(self, capsys):
        code = main(["batch", "--experiments", "fig13", "--frames", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig13" in out
        assert "cache hits" in out

    def test_batch_command_with_cache_dir(self, capsys, tmp_path):
        argv = [
            "batch", "--experiments", "fig13", "--frames", "40",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "28 executed, 0 cache hits" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 executed, 28 cache hits" in second

    def test_clear_cache_evicts_before_running(self, capsys, tmp_path):
        argv = [
            "batch", "--experiments", "fig13", "--frames", "40",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--clear-cache"]) == 0
        out = capsys.readouterr().out
        assert "cleared 28 cached result(s)" in out
        assert "28 executed, 0 cache hits" in out

    def test_clear_cache_requires_cache_dir(self):
        with pytest.raises(ConfigurationError):
            main(["batch", "--experiments", "fig13", "--clear-cache"])

    def test_profile_reaches_platform_experiments(self, capsys):
        code = main(
            ["batch", "--experiments", "fig14", "netdrop", "table4",
             "--frames", "40", "--profile", "wifi-drop"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "profile=wifi-drop" in out
        assert "skipped (no --profile support)" in out  # table4 keeps its grid
        assert "netdrop" in out

    def test_unknown_profile_rejected(self):
        from repro.errors import NetworkError

        with pytest.raises(NetworkError):
            main(["batch", "--experiments", "fig14", "--profile", "warp-link"])


class TestScenariosCommand:
    def test_parse_client_forms(self):
        plain = _parse_client("GRID")
        assert plain.app == "GRID" and plain.profile is None and plain.platform is None
        with_profile = _parse_client("Doom3-H:wifi-drop")
        assert with_profile.profile is not None
        full = _parse_client("HL2-L:4g:300")
        assert full.platform.gpu.frequency_mhz == 300.0

    def test_parse_client_rejects_bad_tokens(self):
        with pytest.raises(ConfigurationError):
            _parse_client("NotAnApp")
        with pytest.raises(ConfigurationError):
            _parse_client("GRID:wifi:abc")
        with pytest.raises(ConfigurationError):
            _parse_client("GRID:wifi:300:extra")

    def test_scenarios_requires_clients(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios"])

    def test_scenarios_command_runs(self, capsys):
        code = main(
            ["scenarios", "--clients", "Doom3-L:wifi", "GRID:4g:400",
             "--frames", "40"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "heterogeneous clients" in out
        assert "Doom3-L" in out and "GRID" in out
        assert "aggregate:" in out


class TestSessionEventsCommand:
    def _events(self, tmp_path, payload):
        import json

        path = tmp_path / "events.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_events_session_runs_and_reports_epochs(self, capsys, tmp_path):
        events = self._events(
            tmp_path,
            {
                "events": [
                    {"t_ms": 150.0, "join": "Doom3-L"},
                    {"t_ms": 300.0, "leave": 1},
                ]
            },
        )
        code = main(
            ["scenarios", "--clients", "GRID", "Doom3-L",
             "--events", events, "--capacity", "2", "--overflow", "queue",
             "--frames", "60"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "epochs" in out
        assert "late-start" in out
        assert "aggregate:" in out

    def test_events_accept_a_bare_list_and_switch(self, capsys, tmp_path):
        events = self._events(
            tmp_path, [{"t_ms": 200.0, "switch": 0, "profile": "4g"}]
        )
        assert main(
            ["scenarios", "--clients", "GRID", "--events", events,
             "--frames", "40"]
        ) == 0
        assert "epochs" in capsys.readouterr().out

    def test_malformed_events_rejected(self, tmp_path):
        for payload in (
            {"events": [{"t_ms": 100.0}]},                      # no kind
            {"events": [{"t_ms": 100.0, "join": "GRID", "leave": 0}]},
            {"events": [{"join": "GRID"}]},                     # no t_ms
            {"events": [{"t_ms": 100.0, "switch": 0}]},         # no profile
            {"events": [{"t_ms": "soon", "join": "GRID"}]},     # bad t_ms
            {"events": [{"t_ms": 100.0, "leave": "one"}]},      # bad index
            {"events": [{"t_ms": 100.0, "switch": None,
                         "profile": "4g"}]},                    # bad index
            "not-a-list",
        ):
            events = self._events(tmp_path, payload)
            with pytest.raises(ConfigurationError):
                main(
                    ["scenarios", "--clients", "GRID", "Doom3-L",
                     "--events", events, "--frames", "40"]
                )

    def test_unreadable_or_invalid_json_rejected(self, tmp_path):
        broken = tmp_path / "broken.json"
        broken.write_text('{"events": [,]}')
        for path in (str(broken), str(tmp_path / "missing.json")):
            with pytest.raises(ConfigurationError):
                main(
                    ["scenarios", "--clients", "GRID",
                     "--events", path, "--frames", "40"]
                )

    def test_capacity_and_overflow_reach_the_static_scenario(self, capsys):
        """Without --events the server options still apply (queue mode)."""
        code = main(
            ["scenarios", "--clients", "GRID", "Doom3-L", "Doom3-L",
             "--capacity", "2", "--overflow", "queue", "--frames", "40"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "queue" in out


class TestFleetCommand:
    def _write(self, tmp_path, name, payload):
        import json

        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def _fleet(self, tmp_path, **overrides):
        payload = {
            "servers": {"a": 2.0, "b": {"capacity": 1.0}},
            "placement": "least-loaded",
        }
        payload.update(overrides)
        return self._write(tmp_path, "fleet.json", payload)

    def test_fleet_failover_session_runs(self, capsys, tmp_path):
        fleet = self._fleet(tmp_path)
        events = self._write(
            tmp_path, "events.json",
            {"events": [{"t_ms": 300.0, "fail": "b"}]},
        )
        code = main(
            ["scenarios", "--clients", "Doom3-L", "GRID",
             "--fleet", fleet, "--events", events, "--frames", "90"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-server occupancy" in out
        assert "fleet summary" in out
        assert "b->a" in out
        assert "least-loaded placement" in out

    def test_fleet_without_events_runs(self, capsys, tmp_path):
        fleet = self._fleet(tmp_path)
        assert main(
            ["scenarios", "--clients", "GRID", "Doom3-L",
             "--fleet", fleet, "--frames", "40"]
        ) == 0
        assert "fleet summary" in capsys.readouterr().out

    def test_capacity_events_in_files_parse_up_down_drain(self, capsys, tmp_path):
        fleet = self._fleet(tmp_path, initial=["a"])
        events = self._write(
            tmp_path, "events.json",
            {"events": [
                {"t_ms": 200.0, "up": "b"},
                {"t_ms": 400.0, "down": "b", "drain": False},
            ]},
        )
        assert main(
            ["scenarios", "--clients", "GRID", "Doom3-L",
             "--fleet", fleet, "--events", events, "--frames", "90"]
        ) == 0
        assert "per-server occupancy" in capsys.readouterr().out

    def test_fleet_conflicts_with_capacity_and_overflow(self, tmp_path):
        fleet = self._fleet(tmp_path)
        with pytest.raises(ConfigurationError):
            main(
                ["scenarios", "--clients", "GRID", "--fleet", fleet,
                 "--capacity", "2", "--frames", "40"]
            )

    def test_capacity_events_without_fleet_rejected(self, tmp_path):
        events = self._write(
            tmp_path, "events.json",
            {"events": [{"t_ms": 200.0, "fail": "b"}]},
        )
        with pytest.raises(ConfigurationError):
            main(
                ["scenarios", "--clients", "GRID",
                 "--events", events, "--frames", "40"]
            )

    def test_malformed_fleet_rejected(self, tmp_path):
        for payload in (
            {"servers": {}},                               # empty
            {"servers": {"a": "big"}},                     # bad capacity
            {"servers": {"a": 1.0}, "warp": True},         # unknown key
            {"placement": "least-loaded"},                 # no servers
            "not-an-object",
        ):
            fleet = self._write(tmp_path, "fleet.json", payload)
            with pytest.raises(ConfigurationError):
                main(
                    ["scenarios", "--clients", "GRID",
                     "--fleet", fleet, "--frames", "40"]
                )
        with pytest.raises(ConfigurationError):
            main(
                ["scenarios", "--clients", "GRID",
                 "--fleet", str(tmp_path / "missing.json"), "--frames", "40"]
            )

    def test_motion_events_flag_runs(self, capsys):
        code = main(
            ["scenarios", "--clients", "GRID", "Doom3-L",
             "--motion-events", "4g", "--frames", "200"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "epochs" in out
        assert "aggregate:" in out

    def test_motion_events_compose_with_a_fleet(self, capsys, tmp_path):
        fleet = self._fleet(tmp_path)
        assert main(
            ["scenarios", "--clients", "GRID", "Doom3-L",
             "--motion-events", "4g", "--frames", "200", "--fleet", fleet]
        ) == 0
        assert "fleet summary" in capsys.readouterr().out


class TestPopulationCommand:
    def _scenario(self, tmp_path, **overrides):
        import json

        payload = {
            "name": "cli-town",
            "horizon_ms": 120_000,
            "arrivals": {"process": "poisson", "rate_per_min": 3.0},
            "party_sizes": {"1": 0.5, "2": 0.5},
            "duration_frames": {"min": 8, "max": 10},
            "clients": [{"app": "GRID"}],
            "profiles": {"default": 3.0, "lte": 1.0},
            "churn": {"late_join": 0.2, "leave": 0.2, "switch": 0.1},
            "fleet": {"servers": {"east": 2, "west": 2}},
            "policies": ["fair-share", "deadline"],
            "slo": {"p99_fps_floor": 45.0},
        }
        payload.update(overrides)
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_parser_defaults(self):
        args = build_parser().parse_args(["population", "city.json"])
        assert args.scenario == "city.json"
        assert args.seed == 0
        assert args.policy is None
        assert args.max_sessions is None
        assert args.stream_dir is None

    def test_bare_stream_flag_parses_to_empty(self):
        args = build_parser().parse_args(["population", "city.json", "--stream"])
        assert args.stream_dir == ""
        args = build_parser().parse_args(
            ["population", "city.json", "--stream", "spill-dir"]
        )
        assert args.stream_dir == "spill-dir"

    def test_population_requires_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["population"])

    def test_population_command_runs(self, capsys, tmp_path):
        scenario = self._scenario(tmp_path)
        assert main(["population", scenario, "--seed", "7"]) == 0
        captured = capsys.readouterr()
        assert "repro population — cli-town" in captured.out
        assert "attainment" in captured.out
        assert "fair-share" in captured.out and "deadline" in captured.out
        assert "client-sessions" in captured.err  # progress goes to stderr

    def test_population_stdout_is_deterministic(self, capsys, tmp_path):
        scenario = self._scenario(tmp_path)
        argv = ["population", scenario, "--seed", "7", "--max-sessions", "3"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_population_report_json(self, capsys, tmp_path):
        import json

        scenario = self._scenario(tmp_path)
        report_path = tmp_path / "report.json"
        assert main(
            ["population", scenario, "--seed", "7", "--max-sessions", "3",
             "--report", str(report_path), "--policy", "deadline"]
        ) == 0
        capsys.readouterr()
        report = json.loads(report_path.read_text())
        assert report["scenario"] == "cli-town"
        assert list(report["policies"]) == ["deadline"]
        assert report["sessions"] == 3

    def test_population_rejects_bad_scenario(self, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x"}))
        with pytest.raises(ConfigurationError):
            main(["population", str(path)])

    def test_examples_population_json_loads(self, monkeypatch):
        from pathlib import Path

        from repro.sim.demand import DemandScenario

        # the shipped scenario references data/ traces by repo-relative path
        monkeypatch.chdir(Path(__file__).resolve().parents[1])
        scenario = DemandScenario.from_json("examples/population.json")
        assert scenario.name == "city-day"
        assert scenario.policies == ("fair-share", "deadline")
