"""Tests for time-varying network profiles."""

import pickle

import pytest

from repro.errors import NetworkError
from repro.network.channel import NetworkChannel
from repro.network.conditions import LTE_4G, NetworkConditions, WIFI
from repro.network.profile import (
    ConstantProfile,
    MarkovProfile,
    NetworkProfile,
    PROFILES,
    PiecewiseProfile,
    TraceProfile,
    as_profile,
    profile_by_name,
    shared_conditions,
)


def _drop() -> PiecewiseProfile:
    return PiecewiseProfile.bandwidth_drop(WIFI, start_ms=500, duration_ms=1000, factor=0.2)


class TestConstantProfile:
    def test_time_invariant(self):
        sampler = ConstantProfile(WIFI).sampler(0)
        assert sampler.conditions_at(0.0) is WIFI
        assert sampler.conditions_at(1e6) is WIFI

    def test_name_and_initial(self):
        profile = ConstantProfile(LTE_4G)
        assert profile.name == "4G LTE"
        assert profile.initial_conditions is LTE_4G

    def test_hashable_and_stable(self):
        assert ConstantProfile(WIFI) == ConstantProfile(WIFI)
        assert hash(ConstantProfile(WIFI)) == hash(ConstantProfile(WIFI))


class TestPiecewiseProfile:
    def test_step_schedule(self):
        sampler = _drop().sampler(0)
        assert sampler.conditions_at(0.0).throughput_mbps == 200.0
        assert sampler.conditions_at(499.9).throughput_mbps == 200.0
        assert sampler.conditions_at(500.0).throughput_mbps == pytest.approx(40.0)
        assert sampler.conditions_at(1499.9).throughput_mbps == pytest.approx(40.0)
        assert sampler.conditions_at(1500.0).throughput_mbps == 200.0

    def test_boundaries(self):
        assert _drop().boundaries_ms == (500.0, 1500.0)

    def test_must_start_at_zero(self):
        with pytest.raises(NetworkError):
            PiecewiseProfile(segments=((10.0, WIFI),))

    def test_starts_must_increase(self):
        with pytest.raises(NetworkError):
            PiecewiseProfile(segments=((0.0, WIFI), (100.0, LTE_4G), (100.0, WIFI)))

    def test_empty_rejected(self):
        with pytest.raises(NetworkError):
            PiecewiseProfile(segments=())

    def test_bandwidth_drop_validation(self):
        with pytest.raises(NetworkError):
            PiecewiseProfile.bandwidth_drop(WIFI, start_ms=0, duration_ms=10, factor=0.5)
        with pytest.raises(NetworkError):
            PiecewiseProfile.bandwidth_drop(WIFI, start_ms=10, duration_ms=10, factor=1.5)

    def test_shared_scales_every_segment(self):
        shared = _drop().shared(4, 0.9)
        sampler = shared.sampler(0)
        assert sampler.conditions_at(0.0).throughput_mbps == pytest.approx(
            200.0 / (4 * 0.9)
        )
        assert sampler.conditions_at(600.0).throughput_mbps == pytest.approx(
            40.0 / (4 * 0.9)
        )


class TestTraceProfile:
    def test_step_replay(self):
        trace = TraceProfile(
            base=WIFI, times_ms=(0.0, 100.0, 250.0), throughput_mbps=(150.0, 30.0, 90.0)
        )
        sampler = trace.sampler(0)
        assert sampler.conditions_at(0.0).throughput_mbps == 150.0
        assert sampler.conditions_at(99.0).throughput_mbps == 150.0
        assert sampler.conditions_at(100.0).throughput_mbps == 30.0
        assert sampler.conditions_at(1e5).throughput_mbps == 90.0

    def test_propagation_override(self):
        trace = TraceProfile(
            base=WIFI,
            times_ms=(0.0, 50.0),
            throughput_mbps=(100.0, 100.0),
            propagation_ms=(2.0, 20.0),
        )
        sampler = trace.sampler(0)
        assert sampler.conditions_at(0.0).propagation_ms == 2.0
        assert sampler.conditions_at(60.0).propagation_ms == 20.0

    def test_validation(self):
        with pytest.raises(NetworkError):
            TraceProfile(base=WIFI, times_ms=(), throughput_mbps=())
        with pytest.raises(NetworkError):
            TraceProfile(base=WIFI, times_ms=(0.0, 1.0), throughput_mbps=(10.0,))
        with pytest.raises(NetworkError):
            TraceProfile(base=WIFI, times_ms=(5.0,), throughput_mbps=(10.0,))
        with pytest.raises(NetworkError):
            TraceProfile(base=WIFI, times_ms=(0.0, 0.0), throughput_mbps=(10.0, 10.0))
        with pytest.raises(NetworkError):
            TraceProfile(base=WIFI, times_ms=(0.0,), throughput_mbps=(0.0,))

    def test_from_csv(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("time_ms,throughput_mbps\n0,120\n400,25\n900,180\n")
        trace = TraceProfile.from_csv(str(path))
        assert trace.times_ms == (0.0, 400.0, 900.0)
        assert trace.throughput_mbps == (120.0, 25.0, 180.0)
        assert trace.name == str(path)
        sampler = trace.sampler(0)
        assert sampler.conditions_at(500.0).throughput_mbps == 25.0

    def test_from_csv_with_propagation(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("0,120,3\n400,25,40\n")
        trace = TraceProfile.from_csv(str(path), base=LTE_4G, label="field-trace")
        assert trace.propagation_ms == (3.0, 40.0)
        assert trace.name == "field-trace"
        assert trace.sampler(0).conditions_at(450.0).propagation_ms == 40.0

    def test_from_csv_rejects_short_rows(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0\n")
        with pytest.raises(NetworkError):
            TraceProfile.from_csv(str(path))

    def test_shared_scales_samples(self):
        trace = TraceProfile(
            base=WIFI, times_ms=(0.0, 100.0), throughput_mbps=(100.0, 40.0)
        )
        shared = trace.shared(2, 1.0)
        assert shared.throughput_mbps == (50.0, 20.0)
        assert trace.shared(1, 0.9) is trace


class TestMarkovProfile:
    def _profile(self) -> MarkovProfile:
        degraded = NetworkConditions(
            name="Wi-Fi", throughput_mbps=25.0, propagation_ms=2.0
        )
        return MarkovProfile(good=WIFI, degraded=degraded, p_degrade=0.3, p_recover=0.3)

    def test_deterministic_per_seed(self):
        profile = self._profile()
        times = [t * 125.0 for t in range(200)]
        a = [profile.sampler(9).conditions_at(t).throughput_mbps for t in times]
        b = [profile.sampler(9).conditions_at(t).throughput_mbps for t in times]
        assert a == b

    def test_different_seeds_differ(self):
        profile = self._profile()
        times = [t * 250.0 for t in range(400)]
        a = [profile.sampler(1).conditions_at(t).throughput_mbps for t in times]
        b = [profile.sampler(2).conditions_at(t).throughput_mbps for t in times]
        assert a != b

    def test_starts_good(self):
        assert self._profile().initial_conditions is WIFI

    def test_visits_both_states(self):
        profile = self._profile()
        sampler = profile.sampler(3)
        seen = {
            sampler.conditions_at(t * 250.0).throughput_mbps for t in range(400)
        }
        assert seen == {200.0, 25.0}

    def test_out_of_order_queries_consistent(self):
        profile = self._profile()
        forward = profile.sampler(5)
        values_forward = [forward.conditions_at(t * 250.0) for t in range(40)]
        backward = profile.sampler(5)
        values_backward = [backward.conditions_at(t * 250.0) for t in reversed(range(40))]
        assert values_forward == list(reversed(values_backward))

    def test_negative_time_rejected(self):
        with pytest.raises(NetworkError):
            self._profile().sampler(0).conditions_at(-1.0)

    def test_validation(self):
        with pytest.raises(NetworkError):
            MarkovProfile(good=WIFI, degraded=WIFI, p_degrade=1.5)
        with pytest.raises(NetworkError):
            MarkovProfile(good=WIFI, degraded=WIFI, dwell_ms=0.0)


class TestSharedConditions:
    def test_single_client_unchanged(self):
        assert shared_conditions(WIFI, 1, 0.9) is WIFI

    def test_divides_throughput_and_grows_jitter(self):
        shared = shared_conditions(WIFI, 4, 0.9)
        assert shared.throughput_mbps == pytest.approx(200.0 / 3.6)
        assert shared.jitter_fraction > WIFI.jitter_fraction
        assert shared.propagation_ms == WIFI.propagation_ms


class TestRegistryAndCoercion:
    def test_registry_has_dynamic_entries(self):
        assert {"wifi-drop", "4g-drop", "wifi-markov"} <= set(PROFILES)

    def test_profile_by_name_slug(self):
        """Preset slugs resolve through by_name — one registry, no drift."""
        assert profile_by_name("wifi") == ConstantProfile(WIFI)
        assert profile_by_name("lte") == ConstantProfile(LTE_4G)

    def test_profile_by_name_preset_label(self):
        assert profile_by_name("4G LTE") == ConstantProfile(LTE_4G)

    def test_profile_by_name_csv(self, tmp_path):
        path = tmp_path / "link.csv"
        path.write_text("0,80\n100,20\n")
        profile = profile_by_name(str(path))
        assert isinstance(profile, TraceProfile)

    def test_unknown_profile_lists_valid_names(self):
        with pytest.raises(NetworkError) as excinfo:
            profile_by_name("warp-link")
        message = str(excinfo.value)
        # Both the dynamic registry and the preset slugs are named.
        for expected in ("wifi-drop", "wifi-markov", "wifi", "4g", "5g"):
            assert expected in message

    def test_as_profile_passthrough_and_coercion(self):
        drop = _drop()
        assert as_profile(drop) is drop
        assert as_profile(WIFI) == ConstantProfile(WIFI)
        assert as_profile("5g") == profile_by_name("5g")
        with pytest.raises(NetworkError):
            as_profile(42)

    def test_profiles_pickle_round_trip(self):
        for profile in PROFILES.values():
            clone = pickle.loads(pickle.dumps(profile))
            assert clone == profile
            assert isinstance(clone, NetworkProfile)


class TestChannelWithProfiles:
    def test_channel_samples_profile_over_time(self):
        channel = NetworkChannel(_drop(), seed=0)
        nominal_before = channel.nominal_bytes_per_ms
        channel.advance_to(600.0)
        assert channel.nominal_bytes_per_ms == pytest.approx(nominal_before * 0.2)
        channel.advance_to(2000.0)
        assert channel.nominal_bytes_per_ms == pytest.approx(nominal_before)

    def test_clock_never_rewinds(self):
        channel = NetworkChannel(_drop(), seed=0)
        channel.advance_to(600.0)
        channel.advance_to(100.0)
        assert channel.now_ms == 600.0

    def test_static_conditions_still_accepted(self):
        channel = NetworkChannel(WIFI, seed=0)
        assert channel.conditions is WIFI
        channel.advance_to(1e6)
        assert channel.conditions is WIFI

    def test_transfers_slow_down_during_drop(self):
        channel = NetworkChannel(_drop(), seed=0)
        before = channel.expected_transfer_time_ms(1e6)
        channel.advance_to(600.0)
        during = channel.expected_transfer_time_ms(1e6)
        assert during > 4.0 * before
