"""Tests for the checked-in 4G/5G trace corpus under data/."""

from pathlib import Path

import pytest

from repro.network.profile import TraceProfile, profile_by_name

DATA_DIR = Path(__file__).resolve().parents[2] / "data"

CORPUS = sorted(DATA_DIR.glob("*.csv"))


def test_corpus_is_present():
    names = {path.name for path in CORPUS}
    assert {"lte_4g_drive.csv", "nr_5g_walk.csv"} <= names


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
class TestCorpusTraces:
    def test_loads_via_from_csv(self, path):
        trace = TraceProfile.from_csv(str(path))
        assert trace.times_ms[0] == 0.0
        assert len(trace.times_ms) >= 60
        assert all(b > a for a, b in zip(trace.times_ms, trace.times_ms[1:]))
        assert all(x > 0 for x in trace.throughput_mbps)
        # Every corpus trace carries a per-sample path latency.
        assert trace.propagation_ms is not None
        assert all(p > 0 for p in trace.propagation_ms)

    def test_shows_real_world_dynamics(self, path):
        """Drive/walk traces swing by well over 3x (handover, blockage)."""
        trace = TraceProfile.from_csv(str(path))
        assert max(trace.throughput_mbps) / min(trace.throughput_mbps) > 3.0

    def test_resolves_as_a_cli_profile_name(self, path):
        trace = profile_by_name(str(path))
        assert isinstance(trace, TraceProfile)
        assert trace.name == str(path)

    def test_samples_deterministically(self, path):
        trace = TraceProfile.from_csv(str(path))
        a = trace.sampler(0).conditions_at(15_500.0)
        b = trace.sampler(0).conditions_at(15_500.0)
        assert a == b
        # Step replay: mid-interval samples hold the previous row.
        assert a == trace.sampler(0).conditions_at(15_000.0)


def test_4g_trace_is_slower_than_5g():
    lte = TraceProfile.from_csv(str(DATA_DIR / "lte_4g_drive.csv"))
    nr = TraceProfile.from_csv(str(DATA_DIR / "nr_5g_walk.csv"))
    lte_mean = sum(lte.throughput_mbps) / len(lte.throughput_mbps)
    nr_mean = sum(nr.throughput_mbps) / len(nr.throughput_mbps)
    assert nr_mean > 2 * lte_mean
