"""Tests for the network channel and condition presets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetworkError
from repro.network.channel import NetworkChannel, snr_efficiency
from repro.network.conditions import ALL_CONDITIONS, EARLY_5G, LTE_4G, WIFI, by_name


class TestConditions:
    def test_table2_throughputs(self):
        assert WIFI.throughput_mbps == 200.0
        assert LTE_4G.throughput_mbps == 100.0
        assert EARLY_5G.throughput_mbps == 500.0

    def test_default_snr_is_20db(self):
        for cond in ALL_CONDITIONS:
            assert cond.snr_db == 20.0

    def test_by_name(self):
        assert by_name("wi-fi") is WIFI
        assert by_name("4G LTE") is LTE_4G
        with pytest.raises(NetworkError):
            by_name("6G")

    def test_by_name_slugs(self):
        assert by_name("wifi") is WIFI
        assert by_name("4g") is LTE_4G
        assert by_name("lte") is LTE_4G
        assert by_name("5g") is EARLY_5G
        assert by_name(" 5G ") is EARLY_5G

    def test_by_name_error_lists_valid_names(self):
        with pytest.raises(NetworkError) as excinfo:
            by_name("6G")
        message = str(excinfo.value)
        for expected in ("Wi-Fi", "4G LTE", "Early 5G", "wifi", "4g", "5g"):
            assert expected in message

    def test_invalid_conditions(self):
        from repro.network.conditions import NetworkConditions

        with pytest.raises(NetworkError):
            NetworkConditions("x", throughput_mbps=0, propagation_ms=1)
        with pytest.raises(NetworkError):
            NetworkConditions("x", throughput_mbps=10, propagation_ms=-1)

    def test_invalid_snr_rejected(self):
        from repro.network.conditions import NetworkConditions

        with pytest.raises(NetworkError):
            NetworkConditions("x", throughput_mbps=10, propagation_ms=1, snr_db=0.0)
        with pytest.raises(NetworkError):
            NetworkConditions("x", throughput_mbps=10, propagation_ms=1, snr_db=-5.0)

    def test_positive_snr_accepted(self):
        from repro.network.conditions import NetworkConditions

        conditions = NetworkConditions(
            "x", throughput_mbps=10, propagation_ms=1, snr_db=3.0
        )
        assert conditions.snr_db == 3.0


class TestSNREfficiency:
    def test_20db_value(self):
        assert snr_efficiency(20.0) == pytest.approx(0.832, abs=0.01)

    def test_monotone_in_snr(self):
        values = [snr_efficiency(s) for s in (0, 10, 20, 23)]
        assert values == sorted(values)

    def test_capped_at_one(self):
        assert snr_efficiency(100.0) == 1.0


class TestChannel:
    def test_nominal_rate(self):
        channel = NetworkChannel(WIFI, seed=0)
        assert channel.nominal_bytes_per_ms == pytest.approx(200e6 / 8 / 1000)

    def test_effective_below_nominal(self):
        channel = NetworkChannel(WIFI, seed=0)
        assert channel.mean_effective_bytes_per_ms < channel.nominal_bytes_per_ms

    def test_expected_transfer_monotone_in_payload(self):
        channel = NetworkChannel(WIFI, seed=0)
        assert channel.expected_transfer_time_ms(2e6) > channel.expected_transfer_time_ms(1e6)

    def test_expected_transfer_faster_on_5g(self):
        wifi = NetworkChannel(WIFI, seed=0)
        fiveg = NetworkChannel(EARLY_5G, seed=0)
        assert fiveg.expected_transfer_time_ms(1e6) < wifi.expected_transfer_time_ms(1e6)

    def test_transfer_records_history(self):
        channel = NetworkChannel(WIFI, seed=0)
        channel.transfer_time_ms(1e5)
        channel.transfer_time_ms(2e5)
        assert len(channel.history) == 2
        assert channel.history[1].payload_bytes == 2e5

    def test_zero_payload_free(self):
        channel = NetworkChannel(WIFI, seed=0)
        assert channel.transfer_time_ms(0.0) == 0.0
        assert len(channel.history) == 0

    def test_negative_payload_rejected(self):
        with pytest.raises(NetworkError):
            NetworkChannel(WIFI).transfer_time_ms(-1)

    def test_deterministic_for_seed(self):
        a = NetworkChannel(WIFI, seed=11)
        b = NetworkChannel(WIFI, seed=11)
        times_a = [a.transfer_time_ms(5e5) for _ in range(10)]
        times_b = [b.transfer_time_ms(5e5) for _ in range(10)]
        assert times_a == times_b

    def test_different_seeds_differ(self):
        a = NetworkChannel(WIFI, seed=1)
        b = NetworkChannel(WIFI, seed=2)
        assert [a.transfer_time_ms(5e5) for _ in range(5)] != [
            b.transfer_time_ms(5e5) for _ in range(5)
        ]

    def test_ack_estimate_tracks_throughput(self):
        channel = NetworkChannel(WIFI, seed=3)
        prior = channel.ack_throughput_bytes_per_ms
        for _ in range(50):
            channel.transfer_time_ms(5e5)
        posterior = channel.ack_throughput_bytes_per_ms
        # The EWMA should settle near the effective throughput.
        assert posterior == pytest.approx(channel.mean_effective_bytes_per_ms, rel=0.25)
        assert posterior != prior

    def test_round_trip_is_twice_one_way(self):
        channel = NetworkChannel(LTE_4G)
        assert channel.round_trip_ms == pytest.approx(2 * channel.one_way_ms)

    @given(st.floats(min_value=1e3, max_value=1e7))
    @settings(max_examples=30)
    def test_transfer_time_positive_and_bounded(self, payload):
        channel = NetworkChannel(WIFI, seed=5)
        duration = channel.transfer_time_ms(payload)
        # Even with worst-case jitter the transfer is bounded by 4x nominal.
        floor = payload / channel.nominal_bytes_per_ms
        assert floor * 0.5 < duration < floor * 5 + 1.0


class TestChannelEdgeCases:
    def test_zero_byte_transfer_consumes_no_jitter(self):
        """Free transfers must not advance the rng stream (determinism)."""
        plain = NetworkChannel(WIFI, seed=4)
        interleaved = NetworkChannel(WIFI, seed=4)
        expected = [plain.transfer_time_ms(5e5) for _ in range(5)]
        observed = []
        for _ in range(5):
            interleaved.transfer_time_ms(0.0)
            observed.append(interleaved.transfer_time_ms(5e5))
        assert observed == expected

    def test_zero_byte_transfer_keeps_ack_estimate(self):
        channel = NetworkChannel(WIFI, seed=4)
        prior = channel.ack_throughput_bytes_per_ms
        channel.transfer_time_ms(0.0)
        assert channel.ack_throughput_bytes_per_ms == prior

    def test_single_chunk_pipeline_is_serial(self):
        """chunks=1 degenerates to the serial sum of the stages."""
        from repro.codec.stream import pipelined_latency_ms

        stages = [4.0, 1.5, 9.0, 2.0]
        assert pipelined_latency_ms(stages, 1) == pytest.approx(sum(stages))

    def test_many_chunk_pipeline_approaches_bottleneck(self):
        from repro.codec.stream import pipelined_latency_ms

        stages = [4.0, 1.5, 9.0, 2.0]
        many = pipelined_latency_ms(stages, 10_000)
        assert many == pytest.approx(max(stages), rel=0.01)
        assert many <= pipelined_latency_ms(stages, 1)

    def test_pipelining_monotone_in_chunks(self):
        from repro.codec.stream import pipelined_latency_ms

        stages = [4.0, 1.5, 9.0, 2.0]
        latencies = [pipelined_latency_ms(stages, k) for k in (1, 2, 4, 8, 16)]
        assert latencies == sorted(latencies, reverse=True)

    def test_per_seed_jitter_determinism_with_dynamic_profile(self):
        from repro.network.profile import PiecewiseProfile

        profile = PiecewiseProfile.bandwidth_drop(
            WIFI, start_ms=50.0, duration_ms=100.0, factor=0.3
        )
        a = NetworkChannel(profile, seed=11)
        b = NetworkChannel(profile, seed=11)
        times_a, times_b = [], []
        for step in range(10):
            a.advance_to(step * 30.0)
            b.advance_to(step * 30.0)
            times_a.append(a.transfer_time_ms(2e5))
            times_b.append(b.transfer_time_ms(2e5))
        assert times_a == times_b


class TestUplink:
    """Asymmetric uplink modelling (pose upload / LIWC feedback cost)."""

    def test_unmodelled_uplink_costs_only_propagation(self):
        channel = NetworkChannel(WIFI, seed=0)
        assert channel.uplink_bytes_per_ms is None
        assert channel.uplink_time_ms(64.0) == WIFI.propagation_ms

    def test_modelled_uplink_adds_serialisation(self):
        channel = NetworkChannel(WIFI.with_uplink(2.0), seed=0)
        assert channel.uplink_time_ms(1e5) > WIFI.propagation_ms
        # Serialisation grows with the payload.
        assert channel.uplink_time_ms(2e5) > channel.uplink_time_ms(1e5)

    def test_zero_uplink_is_rejected(self):
        """The degenerate uplink=0 link is a configuration error."""
        with pytest.raises(NetworkError):
            WIFI.with_uplink(0.0)
        with pytest.raises(NetworkError):
            WIFI.with_uplink(-5.0)

    def test_huge_uplink_degenerates_to_the_legacy_model(self):
        """uplink >> downlink: serialisation vanishes into propagation."""
        legacy = NetworkChannel(WIFI, seed=0)
        huge = NetworkChannel(WIFI.with_uplink(1e9), seed=0)
        assert huge.uplink_time_ms(64.0) == pytest.approx(
            legacy.uplink_time_ms(64.0), abs=0.3
        )

    def test_empty_payload_costs_propagation_even_when_modelled(self):
        channel = NetworkChannel(WIFI.with_uplink(10.0), seed=0)
        assert channel.uplink_time_ms(0.0) == WIFI.propagation_ms

    def test_negative_payload_rejected(self):
        channel = NetworkChannel(WIFI.with_uplink(10.0), seed=0)
        with pytest.raises(NetworkError):
            channel.uplink_time_ms(-1.0)

    def test_uplink_does_not_perturb_downlink_jitter_stream(self):
        """Enabling the uplink must not consume downlink RNG draws."""
        plain = NetworkChannel(WIFI, seed=3)
        asymmetric = NetworkChannel(WIFI.with_uplink(5.0), seed=3)
        asymmetric.uplink_time_ms(1e4)
        downs_plain = [plain.transfer_time_ms(1e5) for _ in range(5)]
        downs_asym = [asymmetric.transfer_time_ms(1e5) for _ in range(5)]
        assert downs_plain == downs_asym

    def test_shared_conditions_divide_the_uplink_too(self):
        from repro.network.profile import shared_conditions

        shared = shared_conditions(WIFI.with_uplink(40.0), 4, 1.0)
        assert shared.uplink_mbps == pytest.approx(10.0)
        # Unmodelled uplinks stay unmodelled.
        assert shared_conditions(WIFI, 4, 1.0).uplink_mbps is None

    def test_uplink_reaches_the_remote_request_path(self):
        """A modelled slow uplink lengthens remote-system latency."""
        from repro.sim.runner import RunSpec, run
        from repro.sim.systems import PlatformConfig

        fast = run(RunSpec(system="remote", app="Doom3-L", n_frames=40))
        slow = run(
            RunSpec(
                system="remote",
                app="Doom3-L",
                n_frames=40,
                platform=PlatformConfig(network=WIFI.with_uplink(0.5)),
            )
        )
        assert slow.mean_latency_ms > fast.mean_latency_ms
