"""Tests for the functional graphics pipeline, including Eq. (3) == Eq. (4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphics.atw import bilinear_sample, reproject
from repro.graphics.composition import compose, layer_weights
from repro.graphics.frame import FrameLayers, LayerImage
from repro.graphics.lens import LensModel
from repro.graphics.unified_filter import classify_tiles_functional, unified_filter


def _make_frame(rng, size=64, channels=None):
    shape = (size, size) if channels is None else (size, size, channels)
    half = (size // 2, size // 2) if channels is None else (size // 2, size // 2, channels)
    third = (size // 3, size // 3) if channels is None else (size // 3, size // 3, channels)
    return FrameLayers(
        fovea=LayerImage(rng.random(shape), 1.0),
        middle=LayerImage(rng.random(half), 2.0),
        outer=LayerImage(rng.random(third), 3.0),
        native_height=size,
        native_width=size,
        gaze_x=size * 0.55,
        gaze_y=size * 0.45,
        r1=size * 0.2,
        r2=size * 0.4,
    )


class TestBilinearSample:
    def test_identity_at_integer_coordinates(self):
        rng = np.random.default_rng(0)
        image = rng.random((16, 16))
        ys, xs = np.meshgrid(np.arange(16.0), np.arange(16.0), indexing="ij")
        assert np.allclose(bilinear_sample(image, xs, ys), image)

    def test_midpoint_average(self):
        image = np.array([[0.0, 1.0]])
        value = bilinear_sample(image, np.array([0.5]), np.array([0.0]))
        assert value[0] == pytest.approx(0.5)

    def test_border_clamping(self):
        image = np.array([[1.0, 2.0], [3.0, 4.0]])
        value = bilinear_sample(image, np.array([-5.0]), np.array([-5.0]))
        assert value[0] == pytest.approx(1.0)

    def test_linearity(self):
        """sample(aA + bB) == a sample(A) + b sample(B) — the UCA property."""
        rng = np.random.default_rng(1)
        a_img, b_img = rng.random((12, 12)), rng.random((12, 12))
        xs = rng.uniform(0, 11, size=(5, 5))
        ys = rng.uniform(0, 11, size=(5, 5))
        combined = bilinear_sample(2.0 * a_img + 3.0 * b_img, xs, ys)
        separate = 2.0 * bilinear_sample(a_img, xs, ys) + 3.0 * bilinear_sample(b_img, xs, ys)
        assert np.allclose(combined, separate)

    def test_multichannel(self):
        rng = np.random.default_rng(2)
        image = rng.random((8, 8, 3))
        out = bilinear_sample(image, np.full((2, 2), 3.5), np.full((2, 2), 2.5))
        assert out.shape == (2, 2, 3)


class TestLayerWeights:
    def test_weights_are_convex(self):
        weights = layer_weights(64, 64, 32, 32, 12, 24, blend_px=4)
        total = weights.sum(axis=0)
        assert np.allclose(total, 1.0)
        assert (weights >= 0).all()

    def test_fovea_dominant_at_center(self):
        weights = layer_weights(64, 64, 32, 32, 12, 24)
        assert weights[0, 32, 32] == pytest.approx(1.0)

    def test_outer_dominant_at_corner(self):
        weights = layer_weights(64, 64, 32, 32, 12, 24)
        assert weights[2, 0, 0] == pytest.approx(1.0)

    def test_hard_borders_with_zero_blend(self):
        weights = layer_weights(64, 64, 32, 32, 12, 24, blend_px=0)
        assert set(np.unique(weights)) <= {0.0, 1.0}


class TestEquation34Equivalence:
    """The central UCA property: reordering composition and ATW is exact."""

    @pytest.mark.parametrize("shift", [(0.0, 0.0), (2.3, -1.7), (-5.5, 3.25)])
    def test_unified_equals_sequential(self, shift):
        rng = np.random.default_rng(42)
        frame = _make_frame(rng)
        sequential = reproject(compose(frame), shift[0], shift[1])
        fused = unified_filter(frame, shift[0], shift[1])
        assert np.allclose(sequential, fused, atol=1e-12)

    def test_unified_equals_sequential_with_lens(self):
        rng = np.random.default_rng(7)
        frame = _make_frame(rng)
        lens = LensModel()
        sequential = reproject(compose(frame), 1.5, -0.75, lens)
        fused = unified_filter(frame, 1.5, -0.75, lens=lens)
        assert np.allclose(sequential, fused, atol=1e-12)

    def test_unified_equals_sequential_rgb(self):
        rng = np.random.default_rng(9)
        frame = _make_frame(rng, channels=3)
        sequential = reproject(compose(frame), -2.0, 0.5)
        fused = unified_filter(frame, -2.0, 0.5)
        assert np.allclose(sequential, fused, atol=1e-12)

    @given(
        st.floats(min_value=-6.0, max_value=6.0),
        st.floats(min_value=-6.0, max_value=6.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_equivalence_property(self, sx, sy, seed):
        rng = np.random.default_rng(seed)
        frame = _make_frame(rng, size=48)
        sequential = reproject(compose(frame), sx, sy)
        fused = unified_filter(frame, sx, sy)
        assert np.allclose(sequential, fused, atol=1e-10)


class TestReproject:
    def test_zero_shift_identity(self):
        rng = np.random.default_rng(3)
        image = rng.random((32, 32))
        assert np.allclose(reproject(image, 0.0, 0.0), image)

    def test_integer_shift_translates(self):
        image = np.zeros((8, 8))
        image[4, 4] = 1.0
        shifted = reproject(image, 1.0, 0.0)
        assert shifted[4, 3] == pytest.approx(1.0)

    def test_lens_distortion_changes_output(self):
        rng = np.random.default_rng(4)
        image = rng.random((32, 32))
        assert not np.allclose(reproject(image, 0, 0, LensModel()), image)


class TestTileClassification:
    def test_bound_tiles_exist_on_borders(self):
        rng = np.random.default_rng(5)
        frame = _make_frame(rng, size=96)
        bound = classify_tiles_functional(frame, tile_px=16)
        assert bound.any()
        assert not bound.all()

    def test_center_tile_unbound(self):
        rng = np.random.default_rng(6)
        frame = _make_frame(rng, size=96)
        bound = classify_tiles_functional(frame, tile_px=16)
        gaze_tile = (int(frame.gaze_y) // 16, int(frame.gaze_x) // 16)
        assert not bound[gaze_tile]

    def test_larger_radii_move_boundary(self):
        rng = np.random.default_rng(8)
        small = _make_frame(rng, size=96)
        large = FrameLayers(
            fovea=small.fovea, middle=small.middle, outer=small.outer,
            native_height=96, native_width=96,
            gaze_x=small.gaze_x, gaze_y=small.gaze_y,
            r1=40, r2=60,
        )
        bound_small = classify_tiles_functional(small, tile_px=16)
        bound_large = classify_tiles_functional(large, tile_px=16)
        assert not np.array_equal(bound_small, bound_large)
