"""Tests for draw-batch geometry and the lens distortion model."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.graphics.frame import LayerImage
from repro.graphics.geometry import DrawBatch, SceneGeometry
from repro.graphics.lens import LensModel
from repro.errors import ConfigurationError


def _scene():
    return SceneGeometry(
        batches=[
            DrawBatch("sky", 5e3, depth=100.0, screen_coverage=0.5, material_cycles=50),
            DrawBatch("terrain", 4e5, depth=20.0, screen_coverage=0.4, material_cycles=200),
            DrawBatch("npc", 8e4, depth=2.0, screen_coverage=0.05, material_cycles=320,
                      interactive=True),
        ],
        frame_pixels=8.3e6,
    )


class TestSceneGeometry:
    def test_total_triangles(self):
        assert _scene().total_triangles == pytest.approx(5e3 + 4e5 + 8e4)

    def test_closest_batch_is_paper_heuristic(self):
        assert _scene().closest_batch().name == "npc"

    def test_tagged_interactive_preferred(self):
        scene = _scene()
        assert [b.name for b in scene.interactive_batches()] == ["npc"]

    def test_untagged_falls_back_to_closest(self):
        scene = _scene()
        scene.batches = [
            DrawBatch(b.name, b.triangles, b.depth, b.screen_coverage, b.material_cycles)
            for b in scene.batches
        ]
        assert [b.name for b in scene.interactive_batches()] == ["npc"]

    def test_static_split_partitions(self):
        fg, bg = _scene().split_static()
        assert {b.name for b in fg} == {"npc"}
        assert {b.name for b in bg} == {"sky", "terrain"}

    def test_workload_from_batches(self):
        scene = _scene()
        wl = scene.workload()
        assert wl.vertices == pytest.approx(scene.total_triangles)
        assert wl.draw_batches == 3
        assert wl.fragments > 0

    def test_workload_weighted_cycles(self):
        wl = _scene().workload()
        assert 50 < wl.fragment_cycles < 320

    def test_empty_scene_errors(self):
        with pytest.raises(WorkloadError):
            SceneGeometry([], 1e6).closest_batch()

    def test_invalid_batch(self):
        with pytest.raises(WorkloadError):
            DrawBatch("bad", -1, 1.0, 0.1, 10)
        with pytest.raises(WorkloadError):
            DrawBatch("bad", 1, 1.0, 2.0, 10)


class TestLens:
    def test_no_distortion_at_center(self):
        lens = LensModel()
        x, y = lens.distort(np.array([100.0]), np.array([100.0]), 100.0, 100.0, 100.0)
        assert x[0] == pytest.approx(100.0)
        assert y[0] == pytest.approx(100.0)

    def test_barrel_pushes_outward(self):
        lens = LensModel(k1=0.2, k2=0.0)
        x, _ = lens.distort(np.array([150.0]), np.array([100.0]), 100.0, 100.0, 100.0)
        assert x[0] > 150.0

    def test_distortion_grows_with_radius(self):
        lens = LensModel()
        xs = np.array([110.0, 150.0, 190.0])
        out_x, _ = lens.distort(xs, np.full(3, 100.0), 100.0, 100.0, 100.0)
        displacement = out_x - xs
        assert displacement[0] < displacement[1] < displacement[2]

    def test_invalid_norm_radius(self):
        with pytest.raises(ConfigurationError):
            LensModel().distort(np.array([1.0]), np.array([1.0]), 0, 0, 0)


class TestLayerImage:
    def test_upsample_shape(self):
        layer = LayerImage(np.ones((8, 8)), scale=2.0)
        up = layer.upsampled(16, 16)
        assert up.shape == (16, 16)
        assert np.allclose(up, 1.0)

    def test_upsample_preserves_mean_roughly(self):
        rng = np.random.default_rng(0)
        layer = LayerImage(rng.random((16, 16)), scale=2.0)
        up = layer.upsampled(32, 32)
        assert up.mean() == pytest.approx(layer.data.mean(), abs=0.05)

    def test_invalid_layer(self):
        with pytest.raises(ConfigurationError):
            LayerImage(np.ones(5))
        with pytest.raises(ConfigurationError):
            LayerImage(np.ones((4, 4)), scale=0.5)
