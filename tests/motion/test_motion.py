"""Tests for pose algebra, motion traces and sensor sampling."""


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, WorkloadError
from repro.motion.dof import GazeDelta, GazePoint, Pose, PoseDelta
from repro.motion.sensors import SampledSensor, eye_tracker, head_tracker
from repro.motion.traces import (
    GazeMotionConfig,
    HeadMotionConfig,
    generate_trace,
)


class TestPoseAlgebra:
    def test_delta_between_poses(self):
        a = Pose(x=1.0, yaw=10.0)
        b = Pose(x=1.5, yaw=15.0)
        delta = b.delta_from(a)
        assert delta.dx == pytest.approx(0.5)
        assert delta.dyaw == pytest.approx(5.0)

    def test_angle_wrap(self):
        a = Pose(yaw=170.0)
        b = Pose(yaw=-170.0)
        assert b.delta_from(a).dyaw == pytest.approx(20.0)

    def test_magnitudes(self):
        delta = PoseDelta(dx=3.0, dy=4.0)
        assert delta.translation_magnitude_m == pytest.approx(5.0)
        delta = PoseDelta(dyaw=3.0, dpitch=4.0)
        assert delta.rotation_magnitude_deg == pytest.approx(5.0)

    def test_exceeds_flags(self):
        delta = PoseDelta(dx=0.01, dyaw=1.0)
        flags = delta.exceeds(0.005, 0.5)
        assert flags == (True, False, False, True, False, False)

    def test_gaze_delta(self):
        a = GazePoint(100.0, 100.0)
        b = GazePoint(130.0, 60.0)
        delta = b.delta_from(a)
        assert delta.magnitude_px == pytest.approx(50.0)
        assert delta.direction_quadrant == 3  # +x, -y

    def test_quadrants(self):
        assert GazeDelta(1, 1).direction_quadrant == 0
        assert GazeDelta(-1, 1).direction_quadrant == 1
        assert GazeDelta(-1, -1).direction_quadrant == 2
        assert GazeDelta(1, -1).direction_quadrant == 3

    @given(st.floats(-1000, 1000), st.floats(-1000, 1000))
    @settings(max_examples=40)
    def test_delta_roundtrip(self, yaw_a, yaw_b):
        delta = Pose(yaw=yaw_b % 360).delta_from(Pose(yaw=yaw_a % 360))
        assert -180.0 < delta.dyaw <= 180.0


class TestTraces:
    def test_deterministic_for_seed(self):
        a = generate_trace(50, 11.1, 1920, 2160, seed=4)
        b = generate_trace(50, 11.1, 1920, 2160, seed=4)
        assert all(
            sa.pose == sb.pose and sa.gaze == sb.gaze
            for sa, sb in zip(a.samples, b.samples)
        )

    def test_different_seeds_differ(self):
        a = generate_trace(50, 11.1, 1920, 2160, seed=1)
        b = generate_trace(50, 11.1, 1920, 2160, seed=2)
        assert any(sa.pose != sb.pose for sa, sb in zip(a.samples, b.samples))

    def test_length_and_times(self):
        trace = generate_trace(30, 10.0, 1920, 2160, seed=0)
        assert len(trace) == 30
        assert trace[5].time_ms == pytest.approx(50.0)

    def test_gaze_stays_on_panel(self):
        trace = generate_trace(500, 11.1, 1280, 1600, seed=3)
        for sample in trace:
            assert 0.0 <= sample.gaze.x_px <= 1280.0
            assert 0.0 <= sample.gaze.y_px <= 1600.0

    def test_activity_in_unit_range(self):
        trace = generate_trace(300, 11.1, 1920, 2160, seed=5)
        for sample in trace:
            assert 0.0 <= sample.activity <= 1.0
        assert trace.mean_activity > 0.0

    def test_motion_is_temporally_correlated(self):
        """OU velocities: adjacent frame deltas correlate, unlike white noise."""
        trace = generate_trace(600, 11.1, 1920, 2160, seed=6)
        yaws = np.array([s.pose.yaw for s in trace])
        deltas = np.diff(yaws)
        corr = np.corrcoef(deltas[:-1], deltas[1:])[0, 1]
        assert corr > 0.5

    def test_calm_phases_reduce_motion(self):
        calm = HeadMotionConfig(calm_scale=0.0, mean_phase_s=1000.0)
        trace = generate_trace(100, 11.1, 1920, 2160, seed=0, head=calm)
        # Either all-calm (zero velocity) or all-active depending on phase
        # draw; with calm_scale=0 a calm run must be exactly still.
        speeds = [s.activity for s in trace]
        assert min(speeds) >= 0.0

    def test_zero_frames(self):
        assert len(generate_trace(0, 11.1, 100, 100)) == 0

    def test_invalid_arguments(self):
        with pytest.raises(WorkloadError):
            generate_trace(-1, 11.1, 100, 100)
        with pytest.raises(WorkloadError):
            generate_trace(10, 0.0, 100, 100)
        with pytest.raises(WorkloadError):
            HeadMotionConfig(calm_scale=2.0)
        with pytest.raises(WorkloadError):
            GazeMotionConfig(center_bias=-0.1)


class TestSensors:
    def test_eye_tracker_is_120hz(self):
        sensor = eye_tracker()
        assert sensor.rate_hz == 120.0
        assert sensor.period_ms == pytest.approx(1000.0 / 120.0)

    def test_head_tracker_faster_than_eye(self):
        assert head_tracker().period_ms < eye_tracker().period_ms

    def test_latest_reading_respects_transport(self):
        sensor = SampledSensor(rate_hz=100.0, transport_ms=2.0)
        # At t=11: newest visible sample is k = floor((11-2)/10) = 0.
        reading = sensor.latest_reading(11.0)
        assert reading.sample_time_ms == 0.0
        # At t=12.1: k = floor(10.1/10) = 1 -> sample at 10 ms.
        reading = sensor.latest_reading(12.1)
        assert reading.sample_time_ms == 10.0
        assert reading.age_ms == pytest.approx(2.1)

    def test_age_never_negative(self):
        sensor = SampledSensor(rate_hz=90.0, transport_ms=2.0)
        for t in (0.0, 1.0, 5.0, 100.0, 1000.5):
            assert sensor.latest_reading(t).age_ms >= 0.0

    def test_worst_case_age(self):
        sensor = SampledSensor(rate_hz=100.0, transport_ms=2.0)
        assert sensor.worst_case_age_ms() == pytest.approx(12.0)

    def test_invalid_sensor(self):
        with pytest.raises(ConfigurationError):
            SampledSensor(rate_hz=0.0)
        with pytest.raises(ConfigurationError):
            SampledSensor(rate_hz=10.0, transport_ms=-1.0)

    @given(st.floats(min_value=0, max_value=1e5))
    @settings(max_examples=40)
    def test_reading_age_bounded(self, t):
        sensor = SampledSensor(rate_hz=120.0, transport_ms=2.0)
        age = sensor.latest_reading(t).age_ms
        assert age <= sensor.worst_case_age_ms() + 1e-9
