"""Tests for the eccentricity controller implementations."""

import pytest

from repro import constants
from repro.core.controllers import (
    ControlContext,
    ControlFeedback,
    FixedEccentricityController,
    LIWCController,
    SoftwareAdaptiveController,
)
from repro.errors import ControllerError
from repro.motion.dof import GazeDelta, PoseDelta


def _context(**overrides):
    defaults = dict(
        pose_delta=PoseDelta(),
        gaze_delta=GazeDelta(),
        triangles=1e6,
        fovea_fraction=0.1,
        periphery_pixels=1e6,
        ack_throughput_bytes_per_ms=20_000.0,
    )
    defaults.update(overrides)
    return ControlContext(**defaults)


def _feedback(local_ms, remote_ms):
    return ControlFeedback(
        measured_local_ms=local_ms,
        measured_remote_ms=remote_ms,
        triangles=1e6,
        fovea_fraction=0.1,
        periphery_pixels=1e6,
        payload_bytes=1e5,
        ack_throughput_bytes_per_ms=20_000.0,
    )


class TestFixedController:
    def test_default_is_classic_fovea(self):
        ctl = FixedEccentricityController()
        assert ctl.select_e1(_context()) == constants.CLASSIC_FOVEA_ECCENTRICITY_DEG

    def test_ignores_feedback(self):
        ctl = FixedEccentricityController(7.0)
        ctl.observe(_feedback(1.0, 50.0))
        assert ctl.select_e1(_context()) == 7.0

    def test_not_serialising(self):
        assert FixedEccentricityController().requires_completed_frame is False

    def test_invalid_e1(self):
        with pytest.raises(ControllerError):
            FixedEccentricityController(0.0)


class TestSoftwareController:
    def test_requires_completed_frame(self):
        """The defining property: software control serialises the pipeline."""
        assert SoftwareAdaptiveController().requires_completed_frame is True

    def test_first_frame_uses_initial_e1(self):
        ctl = SoftwareAdaptiveController(initial_e1_deg=12.0)
        assert ctl.select_e1(_context()) == 12.0

    def test_moves_toward_balance(self):
        ctl = SoftwareAdaptiveController()
        ctl.observe(_feedback(local_ms=2.0, remote_ms=10.0))  # remote slower
        e1_up = ctl.select_e1(_context())
        assert e1_up > constants.MIN_ECCENTRICITY_DEG

    def test_step_clamped_to_five_degrees(self):
        ctl = SoftwareAdaptiveController(initial_e1_deg=20.0)
        ctl.observe(_feedback(local_ms=0.0, remote_ms=100.0))
        assert ctl.select_e1(_context()) == pytest.approx(25.0)
        ctl.observe(_feedback(local_ms=100.0, remote_ms=0.0))
        assert ctl.select_e1(_context()) == pytest.approx(20.0)

    def test_lags_one_frame(self):
        """The controller uses *previous*-frame data: no reaction on frame 1."""
        ctl = SoftwareAdaptiveController()
        first = ctl.select_e1(_context())
        second_before_feedback = ctl.select_e1(_context())
        assert first == second_before_feedback

    def test_bounds_respected(self):
        ctl = SoftwareAdaptiveController()
        for _ in range(50):
            ctl.observe(_feedback(0.0, 100.0))
            e1 = ctl.select_e1(_context())
        assert e1 <= constants.MAX_ECCENTRICITY_DEG
        for _ in range(50):
            ctl.observe(_feedback(100.0, 0.0))
            e1 = ctl.select_e1(_context())
        assert e1 >= constants.MIN_ECCENTRICITY_DEG

    def test_reset(self):
        ctl = SoftwareAdaptiveController(initial_e1_deg=9.0)
        ctl.observe(_feedback(0.0, 50.0))
        ctl.select_e1(_context())
        ctl.reset()
        assert ctl.select_e1(_context()) == 9.0

    def test_invalid_gain(self):
        with pytest.raises(ControllerError):
            SoftwareAdaptiveController(gain_deg_per_ms=0.0)


class TestLIWCControllerAdapter:
    def test_not_serialising(self):
        """Hardware prediction frees the pipeline: no completed-frame wait."""
        assert LIWCController().requires_completed_frame is False

    def test_select_and_observe_roundtrip(self):
        ctl = LIWCController()
        e1 = ctl.select_e1(_context())
        assert constants.MIN_ECCENTRICITY_DEG <= e1 <= constants.MAX_ECCENTRICITY_DEG
        ctl.observe(_feedback(2.0, 8.0))
        e1_next = ctl.select_e1(_context())
        assert constants.MIN_ECCENTRICITY_DEG <= e1_next <= constants.MAX_ECCENTRICITY_DEG

    def test_reset_restores_min_e1(self):
        ctl = LIWCController()
        for _ in range(10):
            ctl.select_e1(_context())
            ctl.observe(_feedback(0.5, 20.0))
        assert ctl.e1_deg > constants.MIN_ECCENTRICITY_DEG
        ctl.reset()
        assert ctl.e1_deg == constants.MIN_ECCENTRICITY_DEG
