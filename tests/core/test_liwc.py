"""Tests for LIWC: motion codec, mapping table, predictor, controller."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.liwc import (
    ACTIONS_DEG,
    LIWC,
    LIWCConfig,
    LatencyPredictor,
    MappingTable,
    MotionCodec,
)
from repro.errors import ControllerError
from repro.motion.dof import GazeDelta, PoseDelta


class TestMotionCodec:
    def test_still_user_encodes_to_zero(self):
        codec = MotionCodec()
        assert codec.encode(PoseDelta(), GazeDelta()) == 0

    def test_code_within_ten_bits(self):
        codec = MotionCodec()
        big = PoseDelta(dx=1, dy=1, dz=1, dyaw=50, dpitch=50, droll=50)
        saccade = GazeDelta(dx_px=-500, dy_px=-500)
        code = codec.encode(big, saccade)
        assert 0 <= code < codec.index_space == 1024

    def test_each_dof_bit_distinct(self):
        codec = MotionCodec()
        codes = set()
        for axis in ("dx", "dy", "dz", "dyaw", "dpitch", "droll"):
            delta = PoseDelta(**{axis: 10.0})
            codes.add(codec.encode(delta, GazeDelta()))
        assert len(codes) == 6

    def test_gaze_magnitude_buckets(self):
        codec = MotionCodec(gaze_magnitude_bounds_px=(10, 60, 200))
        assert codec.gaze_magnitude_bucket(0.0) == 0
        assert codec.gaze_magnitude_bucket(30.0) == 1
        assert codec.gaze_magnitude_bucket(100.0) == 2
        assert codec.gaze_magnitude_bucket(500.0) == 3

    def test_gaze_quadrant_encoded(self):
        codec = MotionCodec()
        quadrant_codes = {
            codec.encode(PoseDelta(), GazeDelta(dx_px=dx, dy_px=dy))
            for dx, dy in ((50, 50), (-50, 50), (-50, -50), (50, -50))
        }
        assert len(quadrant_codes) == 4

    def test_invalid_thresholds(self):
        with pytest.raises(ControllerError):
            MotionCodec(translation_threshold_m=0)
        with pytest.raises(ControllerError):
            MotionCodec(gaze_magnitude_bounds_px=(60, 10, 200))

    @given(
        st.floats(-1, 1), st.floats(-1, 1), st.floats(-1, 1),
        st.floats(-90, 90), st.floats(-90, 90), st.floats(-90, 90),
        st.floats(-2000, 2000), st.floats(-2000, 2000),
    )
    @settings(max_examples=50)
    def test_codes_always_in_range(self, dx, dy, dz, dyaw, dpitch, droll, gx, gy):
        codec = MotionCodec()
        code = codec.encode(
            PoseDelta(dx, dy, dz, dyaw, dpitch, droll), GazeDelta(gx, gy)
        )
        assert 0 <= code < 1024


class TestMappingTable:
    def test_paper_table_depth_and_size(self):
        """Sec. 4.3: depth 2^15, fp16 entries => 64 KB SRAM."""
        table = MappingTable()
        assert table.depth == 32768
        assert table.size_bytes == 64 * 1024

    def test_prior_gradients_encode_physics(self):
        """Growing the fovea should be expected to reduce remote-local diff."""
        table = MappingTable(motion_codes=4, prior_slope_ms_per_deg=0.5)
        gradients = table.gradients(0)
        assert gradients[ACTIONS_DEG.index(5)] == pytest.approx(-2.5, abs=0.01)
        assert gradients[ACTIONS_DEG.index(-5)] == pytest.approx(2.5, abs=0.01)

    def test_lookup_cancels_imbalance(self):
        table = MappingTable(motion_codes=4, prior_slope_ms_per_deg=1.0)
        # Remote 3 ms slower: best action is +3 degrees (gradient -3).
        idx = table.lookup(0, imbalance_ms=3.0)
        assert ACTIONS_DEG[idx] == 3

    def test_lookup_zero_imbalance_holds(self):
        table = MappingTable(motion_codes=4)
        assert ACTIONS_DEG[table.lookup(0, 0.0)] == 0

    def test_lookup_saturates_at_extremes(self):
        table = MappingTable(motion_codes=4, prior_slope_ms_per_deg=1.0)
        assert ACTIONS_DEG[table.lookup(0, 100.0)] == 5
        assert ACTIONS_DEG[table.lookup(0, -100.0)] == -5

    def test_update_moves_gradient_toward_observation(self):
        table = MappingTable(motion_codes=4)
        before = table.gradients(1)[7]
        table.update(1, 7, observed_delta_ms=10.0, alpha=0.5)
        after = table.gradients(1)[7]
        assert after == pytest.approx(0.5 * before + 5.0, abs=0.05)

    def test_update_validates_inputs(self):
        table = MappingTable(motion_codes=4)
        with pytest.raises(ControllerError):
            table.update(99, 0, 1.0, 0.1)
        with pytest.raises(ControllerError):
            table.update(0, 99, 1.0, 0.1)
        with pytest.raises(ControllerError):
            table.update(0, 0, 1.0, alpha=0.0)

    def test_entries_stored_as_fp16(self):
        table = MappingTable(motion_codes=2)
        table.update(0, 0, 1.0 / 3.0, alpha=1.0)
        stored = table.gradients(0)[0]
        assert stored == pytest.approx(np.float16(1.0 / 3.0), abs=1e-6)

    @given(st.floats(-20, 20), st.integers(0, 10))
    @settings(max_examples=40)
    def test_update_bounded_by_inputs(self, delta, action):
        """EWMA update stays within [min, max] of old value and observation."""
        table = MappingTable(motion_codes=2)
        old = float(table.gradients(0)[action])
        table.update(0, action, delta, alpha=0.3)
        new = float(table.gradients(0)[action])
        lo, hi = min(old, delta), max(old, delta)
        assert lo - 0.05 <= new <= hi + 0.05


class TestLatencyPredictor:
    def test_local_prediction_eq2(self):
        pred = LatencyPredictor(gpu_throughput=1000.0)
        assert pred.predict_local_ms(10_000, 0.5) == pytest.approx(5.0)

    def test_remote_prediction_eq2(self):
        pred = LatencyPredictor(bits_per_pixel=0.8, path_overhead_ms=2.0)
        # 1 Mpx * 0.8 bpp / 8 = 100 KB at 20 KB/ms => 5 ms + overhead.
        assert pred.predict_remote_ms(1e6, 20_000.0) == pytest.approx(7.0)

    def test_observe_local_converges(self):
        pred = LatencyPredictor(gpu_throughput=1.0, ewma_alpha=0.5)
        for _ in range(40):
            pred.observe_local(triangles=50_000, fovea_fraction=0.4, measured_ms=10.0)
        # True throughput = 50000*0.4/10 = 2000.
        assert pred.gpu_throughput == pytest.approx(2000.0, rel=0.01)

    def test_observe_remote_updates_bpp_and_overhead(self):
        pred = LatencyPredictor(bits_per_pixel=0.1, path_overhead_ms=0.0, ewma_alpha=0.5)
        for _ in range(40):
            pred.observe_remote(
                periphery_pixels=1e6,
                payload_bytes=100_000,
                measured_ms=9.0,
                ack_throughput_bytes_per_ms=20_000,
            )
        assert pred.bits_per_pixel == pytest.approx(0.8, rel=0.01)
        assert pred.path_overhead_ms == pytest.approx(4.0, rel=0.01)

    def test_invalid_inputs(self):
        pred = LatencyPredictor()
        with pytest.raises(ControllerError):
            pred.predict_local_ms(-1, 0.5)
        with pytest.raises(ControllerError):
            pred.predict_remote_ms(1e6, 0.0)


class _Env:
    """A synthetic local/remote latency environment for closed-loop tests."""

    def __init__(self, local_slope=0.25, remote_at_zero=12.0, remote_slope=0.18):
        self.local_slope = local_slope
        self.remote_at_zero = remote_at_zero
        self.remote_slope = remote_slope

    def local_ms(self, e1):
        return self.local_slope * e1

    def remote_ms(self, e1):
        return max(self.remote_at_zero - self.remote_slope * e1, 1.0)

    def balanced_e1(self):
        return self.remote_at_zero / (self.local_slope + self.remote_slope)


class TestLIWCClosedLoop:
    def _run(self, env, frames=120):
        liwc = LIWC(LIWCConfig(deadband_ms=0.1))
        triangles = 1_000_000.0
        for _ in range(frames):
            e1 = liwc.e1_deg
            fovea_fraction = min(e1 / 90.0, 1.0)
            periphery_px = max(1e6 * (1 - fovea_fraction), 0.0)
            liwc.select(
                PoseDelta(), GazeDelta(), triangles, fovea_fraction, periphery_px,
                ack_throughput_bytes_per_ms=20_000.0,
            )
            e1 = liwc.e1_deg
            local = env.local_ms(e1)
            remote = env.remote_ms(e1)
            liwc.observe(
                measured_local_ms=local,
                measured_remote_ms=remote,
                triangles=triangles,
                fovea_fraction=min(e1 / 90.0, 1.0),
                periphery_pixels=max(1e6 * (1 - e1 / 90.0), 0.0),
                payload_bytes=max(1e5 * (1 - e1 / 90.0), 1.0),
                ack_throughput_bytes_per_ms=20_000.0,
            )
        return liwc

    def test_converges_near_balance(self):
        env = _Env()
        liwc = self._run(env)
        final_ratio = env.remote_ms(liwc.e1_deg) / max(env.local_ms(liwc.e1_deg), 1e-9)
        assert 0.5 < final_ratio < 2.0

    def test_respects_bounds(self):
        # Remote always enormous: controller should saturate at max e1.
        env = _Env(local_slope=0.01, remote_at_zero=100.0, remote_slope=0.0)
        liwc = self._run(env, frames=60)
        assert liwc.e1_deg == pytest.approx(liwc.config.max_e1_deg)

    def test_light_remote_shrinks_fovea(self):
        env = _Env(local_slope=1.0, remote_at_zero=1.0, remote_slope=0.0)
        liwc = self._run(env, frames=60)
        assert liwc.e1_deg == pytest.approx(liwc.config.min_e1_deg)

    def test_reset_restores_initial_state(self):
        liwc = self._run(_Env())
        liwc.reset()
        assert liwc.e1_deg == liwc.config.min_e1_deg
        assert liwc.last_imbalance_ms is None

    def test_step_limited_to_five_degrees(self):
        liwc = LIWC()
        history = [liwc.e1_deg]
        triangles = 1e6
        for _ in range(30):
            liwc.select(PoseDelta(), GazeDelta(), triangles, 0.1, 1e6, 20_000.0)
            history.append(liwc.e1_deg)
            liwc.observe(1.0, 10.0, triangles, 0.1, 1e6, 1e5, 20_000.0)
        steps = np.abs(np.diff(history))
        assert steps.max() <= 5.0 + 1e-9


class TestLIWCConfig:
    def test_invalid_alpha(self):
        with pytest.raises(ControllerError):
            LIWCConfig(reward_alpha=0.0)

    def test_invalid_bounds(self):
        with pytest.raises(ControllerError):
            LIWCConfig(min_e1_deg=10.0, max_e1_deg=5.0)

    def test_invalid_deadband(self):
        with pytest.raises(ControllerError):
            LIWCConfig(deadband_ms=-1.0)
