"""Tests for the UCA hardware-unit model (Sec. 4.2 / 4.3)."""

import pytest

from repro import constants
from repro.core.foveation import DisplayGeometry, FoveationModel
from repro.core.uca import TileStats, UCAConfig, UCAUnit
from repro.errors import ConfigurationError


class TestUCAConfig:
    def test_paper_defaults(self):
        cfg = UCAConfig()
        assert cfg.units == 2
        assert cfg.cycles_per_tile == 532
        assert cfg.tile_px == 32
        assert cfg.frequency_mhz == 500.0

    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError):
            UCAConfig(units=0)
        with pytest.raises(ConfigurationError):
            UCAConfig(cycles_per_tile=0)
        with pytest.raises(ConfigurationError):
            UCAConfig(critical_tail_fraction=0.0)


class TestTileAccounting:
    def test_tile_grid(self):
        uca = UCAUnit()
        assert uca.tile_grid(1920, 2160) == (60, 68)

    def test_tile_count_both_eyes(self):
        uca = UCAUnit()
        assert uca.tile_count(1920, 2160) == 60 * 68 * 2

    def test_tile_grid_rounds_up(self):
        uca = UCAUnit()
        assert uca.tile_grid(33, 33) == (2, 2)

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            UCAUnit().tile_grid(0, 100)


class TestUCATiming:
    def test_occupancy_matches_paper_arithmetic(self):
        """8160 tiles x 532 cycles / 500 MHz / 2 units ~= 4.34 ms."""
        uca = UCAUnit()
        expected = 8160 * 532 / 500e3 / 2
        assert uca.occupancy_ms(1920, 2160) == pytest.approx(expected)

    def test_occupancy_meets_realtime_budget(self):
        """Sec. 4.3: 2 UCAs at 500 MHz are sufficient for realtime VR."""
        uca = UCAUnit()
        assert uca.occupancy_ms(1920, 2160) < constants.FRAME_BUDGET_MS

    def test_tail_is_fraction_of_occupancy(self):
        uca = UCAUnit(UCAConfig(critical_tail_fraction=0.25))
        assert uca.critical_tail_ms(1920, 2160) == pytest.approx(
            0.25 * uca.occupancy_ms(1920, 2160)
        )

    def test_reconstruction_costs_full_occupancy(self):
        uca = UCAUnit()
        assert uca.reconstruct_time_ms(1920, 2160) == pytest.approx(
            uca.occupancy_ms(1920, 2160)
        )

    def test_more_units_scale_throughput(self):
        one = UCAUnit(UCAConfig(units=1))
        two = UCAUnit(UCAConfig(units=2))
        assert one.occupancy_ms(1920, 2160) == pytest.approx(
            2 * two.occupancy_ms(1920, 2160)
        )

    def test_frequency_scaling(self):
        slow = UCAUnit(UCAConfig(frequency_mhz=250))
        fast = UCAUnit(UCAConfig(frequency_mhz=500))
        assert slow.occupancy_ms(1920, 2160) == pytest.approx(
            2 * fast.occupancy_ms(1920, 2160)
        )

    def test_tiles_per_second(self):
        uca = UCAUnit()
        assert uca.tiles_per_second() == pytest.approx(2 * 500e6 / 532)


class TestTileClassification:
    def test_bound_tiles_scale_with_radius(self):
        uca = UCAUnit()
        model = FoveationModel(DisplayGeometry(1920, 2160))
        ppd = model.display.pixels_per_degree
        small = uca.classify_tiles(1920, 2160, model.plan(8.0), ppd)
        large = uca.classify_tiles(1920, 2160, model.plan(30.0, e2_deg=45.0), ppd)
        assert large.bound_tiles > small.bound_tiles

    def test_bound_never_exceeds_total(self):
        uca = UCAUnit()
        model = FoveationModel(DisplayGeometry(1920, 2160))
        ppd = model.display.pixels_per_degree
        for e1 in (5.0, 25.0, 60.0):
            stats = uca.classify_tiles(1920, 2160, model.plan(e1), ppd)
            assert 0 <= stats.bound_tiles <= stats.total_tiles
            assert stats.non_overlapping_tiles == stats.total_tiles - stats.bound_tiles

    def test_bound_fraction(self):
        stats = TileStats(total_tiles=100, bound_tiles=25)
        assert stats.bound_fraction == pytest.approx(0.25)

    def test_bound_fraction_empty(self):
        assert TileStats(0, 0).bound_fraction == 0.0
