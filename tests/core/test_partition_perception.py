"""Tests for the partition engine and the perception-constraint checker."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.h264 import H264Model
from repro.core.foveation import DisplayGeometry, FoveationModel
from repro.core.partition import (
    CULLING_RESIDUE,
    FramePartition,
    PartitionEngine,
    split_local_workload,
    split_remote_workload,
)
from repro.core.perception import check_plan, quality_score
from repro.errors import FoveationError
from repro.gpu.perf_model import RenderWorkload
from repro.motion.dof import GazePoint


@pytest.fixture
def model():
    return FoveationModel(DisplayGeometry(1920, 2160))


@pytest.fixture
def engine(model):
    return PartitionEngine(model)


@pytest.fixture
def full_workload():
    return RenderWorkload(
        vertices=1e6, fragments=14e6, fragment_cycles=300.0, draw_batches=500.0
    )


class TestWorkloadSplit:
    def test_local_fragments_scale_with_area(self, model, full_workload):
        plan = model.plan(20.0)
        local = split_local_workload(full_workload, plan)
        assert local.fragments == pytest.approx(
            full_workload.fragments * plan.fovea_fraction
        )

    def test_local_vertices_keep_culling_residue(self, model, full_workload):
        plan = model.plan(5.0)
        local = split_local_workload(full_workload, plan)
        assert local.vertices >= full_workload.vertices * CULLING_RESIDUE * 0.99

    def test_remote_fragments_are_downsampled_pixels(self, model, full_workload):
        plan = model.plan(20.0)
        remote = split_remote_workload(full_workload, plan)
        expected = full_workload.fragments * plan.periphery_pixels / plan.native_pixels
        assert remote.fragments == pytest.approx(expected)

    def test_split_shrinks_with_larger_fovea_on_remote(self, model, full_workload):
        small = split_remote_workload(full_workload, model.plan(10.0))
        large = split_remote_workload(full_workload, model.plan(40.0))
        assert large.fragments < small.fragments


class TestPartitionEngine:
    def test_partition_structure(self, engine, full_workload):
        part = engine.partition(full_workload, 20.0)
        assert isinstance(part, FramePartition)
        assert part.transmitted_bytes == part.middle_bytes + part.outer_bytes
        assert part.transmitted_bytes > 0

    def test_gaze_affects_partition(self, engine, full_workload):
        centred = engine.partition(full_workload, 30.0)
        cornered = engine.partition(
            full_workload, 30.0, gaze=GazePoint(50.0, 50.0)
        )
        assert cornered.plan.fovea_pixels < centred.plan.fovea_pixels

    def test_complexity_raises_payload(self, engine, full_workload):
        low = engine.partition(full_workload, 15.0, content_complexity=0.1)
        high = engine.partition(full_workload, 15.0, content_complexity=0.9)
        assert high.transmitted_bytes > low.transmitted_bytes

    def test_full_local_partition_has_no_payload(self, engine, full_workload):
        corner = engine.foveation.display.corner_eccentricity_deg
        part = engine.partition(full_workload, corner + 5.0)
        assert part.transmitted_bytes == pytest.approx(0.0, abs=100.0)

    def test_negative_e1_rejected(self, engine, full_workload):
        with pytest.raises(FoveationError):
            engine.partition(full_workload, -2.0)

    @given(st.floats(min_value=5.0, max_value=60.0))
    @settings(max_examples=20, deadline=None)
    def test_payload_monotone_decreasing_in_e1(self, e1):
        """More local fovea always means less to transmit."""
        model = FoveationModel(DisplayGeometry(1920, 2160))
        engine = PartitionEngine(model, H264Model())
        wl = RenderWorkload(1e6, 14e6, 300.0, 500.0)
        a = engine.partition(wl, e1).transmitted_bytes
        b = engine.partition(wl, e1 + 5.0).transmitted_bytes
        assert b <= a * (1 + 1e-6)


class TestPerception:
    def test_mar_constrained_plan_passes_survey(self, model):
        """The paper's survey conclusion: MAR-satisfying plans look perfect."""
        for e1 in (5.0, 15.0, 30.0, 50.0):
            verdict = check_plan(model, model.plan(e1))
            assert verdict.passes

    def test_violating_plan_fails(self, model):
        plan = model.plan(10.0)
        bad = type(plan)(
            e1_deg=plan.e1_deg,
            e2_deg=plan.e2_deg,
            middle_scale=plan.middle_scale * 10,
            outer_scale=plan.outer_scale,
            fovea_pixels=plan.fovea_pixels,
            middle_pixels=plan.middle_pixels,
            outer_pixels=plan.outer_pixels,
            native_pixels=plan.native_pixels,
        )
        verdict = check_plan(model, bad)
        assert not verdict.passes
        assert verdict.middle_margin < 1.0

    def test_quality_score_ceiling_while_constrained(self, model):
        assert quality_score(model, model.plan(25.0)) == 5.0

    def test_quality_score_degrades_with_violation(self, model):
        plan = model.plan(10.0)
        bad = type(plan)(
            e1_deg=plan.e1_deg,
            e2_deg=plan.e2_deg,
            middle_scale=plan.middle_scale * 4,
            outer_scale=plan.outer_scale * 4,
            fovea_pixels=plan.fovea_pixels,
            middle_pixels=plan.middle_pixels,
            outer_pixels=plan.outer_pixels,
            native_pixels=plan.native_pixels,
        )
        assert quality_score(model, bad) < 5.0
