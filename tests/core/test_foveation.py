"""Tests for the foveation model: MAR, display geometry, Eq. (1)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import constants
from repro.core.foveation import (
    DisplayGeometry,
    FoveationModel,
    MARModel,
    default_model,
)
from repro.errors import FoveationError


class TestMARModel:
    def test_mar_at_fovea_is_omega0(self):
        mar = MARModel()
        assert mar.mar(0.0) == pytest.approx(constants.FOVEA_MAR_DEG)

    def test_mar_grows_linearly(self):
        mar = MARModel(slope=0.02, omega_0=0.02)
        assert mar.mar(10.0) == pytest.approx(0.02 + 0.2)

    def test_negative_eccentricity_rejected(self):
        with pytest.raises(FoveationError):
            MARModel().mar(-1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(FoveationError):
            MARModel(slope=-0.1)
        with pytest.raises(FoveationError):
            MARModel(omega_0=0.0)

    def test_sampling_factor_clamped_at_one(self):
        mar = MARModel()
        # A display much coarser than the eye: no reduction possible.
        assert mar.sampling_factor(0.0, display_mar_deg=1.0) == 1.0

    def test_sampling_factor_grows_with_eccentricity(self):
        mar = MARModel()
        display_mar = 0.05
        factors = [mar.sampling_factor(e, display_mar) for e in (0, 10, 20, 40)]
        assert factors == sorted(factors)

    def test_sampling_factor_invalid_display(self):
        with pytest.raises(FoveationError):
            MARModel().sampling_factor(5.0, 0.0)

    @given(st.floats(min_value=0.0, max_value=90.0))
    def test_sampling_factor_always_at_least_one(self, ecc):
        assert MARModel().sampling_factor(ecc, 0.054) >= 1.0


class TestDisplayGeometry:
    def test_pixels_per_degree(self):
        display = DisplayGeometry(1100, 1100, hfov_deg=110, vfov_deg=110)
        assert display.pixels_per_degree == pytest.approx(10.0)

    def test_native_mar_is_inverse_ppd(self):
        display = DisplayGeometry(1920, 2160)
        assert display.native_mar_deg == pytest.approx(1.0 / display.pixels_per_degree)

    def test_corner_eccentricity(self):
        display = DisplayGeometry(1920, 2160)
        expected = math.hypot(960, 1080) / display.pixels_per_degree
        assert display.corner_eccentricity_deg == pytest.approx(expected)

    def test_radius_conversion(self):
        display = DisplayGeometry(1920, 2160)
        assert display.radius_px(10.0) == pytest.approx(10 * display.pixels_per_degree)

    def test_invalid_dimensions(self):
        with pytest.raises(FoveationError):
            DisplayGeometry(0, 100)
        with pytest.raises(FoveationError):
            DisplayGeometry(100, 100, hfov_deg=0)

    def test_region_area_zero_at_zero_eccentricity(self):
        display = DisplayGeometry(1920, 2160)
        assert display.region_area_px(0.0) == 0.0

    def test_region_area_unclipped_disc(self):
        display = DisplayGeometry(1920, 2160)
        # Small centred disc: no clipping, area = pi r^2.
        radius = display.radius_px(5.0)
        area = display.region_area_px(5.0)
        assert area == pytest.approx(math.pi * radius**2, rel=1e-3)

    def test_region_area_clipped_to_panel(self):
        display = DisplayGeometry(1920, 2160)
        huge = display.region_area_px(200.0)
        assert huge == pytest.approx(display.total_pixels, rel=1e-3)

    def test_region_area_off_center_gaze_smaller(self):
        display = DisplayGeometry(1920, 2160)
        centred = display.region_area_px(30.0)
        cornered = display.region_area_px(30.0, gaze_x_px=0.0, gaze_y_px=0.0)
        assert cornered < centred

    @given(
        st.floats(min_value=1.0, max_value=70.0),
        st.floats(min_value=0.0, max_value=1920.0),
        st.floats(min_value=0.0, max_value=2160.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_region_area_bounded(self, ecc, gx, gy):
        display = DisplayGeometry(1920, 2160)
        area = display.region_area_px(ecc, gx, gy)
        assert 0.0 <= area <= display.total_pixels * (1 + 1e-6)


class TestFoveationPlan:
    @pytest.fixture
    def model(self):
        return FoveationModel(DisplayGeometry(1920, 2160))

    def test_layer_scales_monotone(self, model):
        s_mid_a, s_out_a = model.layer_scales(5.0, 20.0)
        s_mid_b, s_out_b = model.layer_scales(15.0, 40.0)
        assert s_mid_b >= s_mid_a
        assert s_out_b >= s_out_a

    def test_layer_scales_capped(self, model):
        _, s_out = model.layer_scales(5.0, 70.0)
        assert s_out <= model.scale_cap

    def test_plan_basic_invariants(self, model):
        plan = model.plan(15.0)
        assert plan.e2_deg >= plan.e1_deg
        assert 0 < plan.fovea_fraction < 1
        assert plan.middle_scale >= 1.0
        assert plan.outer_scale >= plan.middle_scale - 1e-9
        assert plan.effective_pixels <= plan.native_pixels

    def test_bigger_fovea_means_more_local_pixels(self, model):
        small = model.plan(10.0)
        large = model.plan(30.0)
        assert large.fovea_pixels > small.fovea_pixels

    def test_bigger_fovea_means_fewer_transmitted_pixels(self, model):
        small = model.plan(10.0)
        large = model.plan(40.0)
        assert large.periphery_pixels < small.periphery_pixels

    def test_full_frame_coverage_at_corner(self, model):
        corner = model.display.corner_eccentricity_deg
        plan = model.plan(corner + 5.0)
        assert plan.covers_full_frame
        assert plan.periphery_pixels == pytest.approx(0.0, abs=1.0)

    def test_explicit_e2_respected(self, model):
        plan = model.plan(10.0, e2_deg=25.0)
        assert plan.e2_deg == pytest.approx(25.0)

    def test_e2_below_e1_rejected(self, model):
        with pytest.raises(FoveationError):
            model.plan(20.0, e2_deg=10.0)

    def test_negative_e1_rejected(self, model):
        with pytest.raises(FoveationError):
            model.plan(-1.0)

    def test_optimize_e2_in_range(self, model):
        e2 = model.optimize_e2(10.0)
        assert 10.0 <= e2 <= model.display.corner_eccentricity_deg

    def test_optimize_e2_beats_extremes(self, model):
        """Eq. (1): the optimiser's periphery cost is minimal on the grid."""
        e1 = 8.0
        best = model.optimize_e2(e1)
        best_cost = sum(model.periphery_pixels(e1, best))
        for e2 in (e1, e1 + 10.0, model.display.corner_eccentricity_deg):
            cost = sum(model.periphery_pixels(e1, e2))
            assert best_cost <= cost + 1.0

    def test_resolution_reduction_bounds(self, model):
        for e1 in (5.0, 20.0, 45.0):
            plan = model.plan(e1)
            assert 0.0 <= plan.resolution_reduction < 1.0

    def test_invalid_scale_cap(self):
        with pytest.raises(FoveationError):
            FoveationModel(DisplayGeometry(100, 100), scale_cap=0.5)

    def test_invalid_eyes(self):
        with pytest.raises(FoveationError):
            FoveationModel(DisplayGeometry(100, 100), eyes=0)

    def test_default_model_cached(self):
        assert default_model(1920, 2160) is default_model(1920, 2160)

    @given(st.floats(min_value=5.0, max_value=70.0))
    @settings(max_examples=25, deadline=None)
    def test_plan_pixel_conservation(self, e1):
        """Rendered pixels never exceed native; all quantities nonnegative."""
        model = default_model(1920, 2160)
        plan = model.plan(e1)
        assert plan.fovea_pixels >= 0
        assert plan.middle_pixels >= 0
        assert plan.outer_pixels >= 0
        assert plan.effective_pixels <= plan.native_pixels * (1 + 1e-9)

    @given(
        st.floats(min_value=5.0, max_value=60.0),
        st.floats(min_value=5.0, max_value=60.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_fovea_pixels_monotone_in_e1(self, a, b):
        model = default_model(1920, 2160)
        lo, hi = min(a, b), max(a, b)
        assert model.plan(lo).fovea_pixels <= model.plan(hi).fovea_pixels + 1e-6


class TestVectorisedAreas:
    def test_matches_scalar_implementation(self):
        from repro.core.foveation import _disc_rect_area, _disc_rect_areas

        radii = np.array([50.0, 200.0, 900.0, 1500.0])
        vector = _disc_rect_areas(960.0, 1080.0, radii, 1920.0, 2160.0)
        for r, v in zip(radii, vector):
            scalar = _disc_rect_area(960.0, 1080.0, float(r), 1920.0, 2160.0, 256)
            assert v == pytest.approx(scalar, rel=5e-3)
