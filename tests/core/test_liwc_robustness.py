"""Failure-injection tests: LIWC under environment disruption.

The paper's motivation for dynamic control is "realtime uncertainties:
unpredictable user inputs and environment (hardware and network) changes".
These tests drive the controller through abrupt environment shifts and
verify it re-converges, never leaves its legal range, and degrades
gracefully when the environment becomes hostile.
"""

import numpy as np

from repro.core.liwc import LIWC, LIWCConfig
from repro.motion.dof import GazeDelta, PoseDelta


class _DynamicEnv:
    """A local/remote latency environment whose parameters can be mutated."""

    def __init__(self):
        self.local_slope = 0.25       # ms per degree of e1
        self.remote_at_zero = 12.0    # ms at e1 = 0
        self.remote_slope = 0.18      # ms saved per degree of e1
        self.noise = 0.0
        self._rng = np.random.default_rng(0)

    def local_ms(self, e1):
        return self.local_slope * e1 + self.noise * abs(self._rng.standard_normal())

    def remote_ms(self, e1):
        base = max(self.remote_at_zero - self.remote_slope * e1, 1.0)
        return base + self.noise * abs(self._rng.standard_normal())


def _step(liwc: LIWC, env: _DynamicEnv) -> tuple[float, float, float]:
    triangles = 1e6
    e1 = liwc.e1_deg
    fovea_fraction = min(e1 / 90.0, 1.0)
    periphery = max(1e6 * (1 - fovea_fraction), 0.0)
    liwc.select(PoseDelta(), GazeDelta(), triangles, fovea_fraction, periphery, 20_000.0)
    e1 = liwc.e1_deg
    local = env.local_ms(e1)
    remote = env.remote_ms(e1)
    liwc.observe(
        local, remote, triangles, min(e1 / 90.0, 1.0),
        max(1e6 * (1 - e1 / 90.0), 0.0), max(1e5 * (1 - e1 / 90.0), 1.0), 20_000.0,
    )
    return e1, local, remote


class TestNetworkCollapse:
    def test_reconverges_after_bandwidth_drop(self):
        """Remote latency suddenly doubles: e1 must migrate upward."""
        env = _DynamicEnv()
        liwc = LIWC(LIWCConfig(deadband_ms=0.1))
        for _ in range(120):
            _step(liwc, env)
        e1_before = liwc.e1_deg
        env.remote_at_zero = 24.0  # the link degrades
        for _ in range(150):
            e1, local, remote = _step(liwc, env)
        assert liwc.e1_deg > e1_before + 3.0
        assert abs(remote - local) < 4.0  # re-balanced

    def test_reconverges_after_bandwidth_boost(self):
        """Remote latency halves (network upgrade): e1 must shrink."""
        env = _DynamicEnv()
        liwc = LIWC(LIWCConfig(deadband_ms=0.1))
        for _ in range(120):
            _step(liwc, env)
        e1_before = liwc.e1_deg
        env.remote_at_zero = 5.0
        for _ in range(150):
            _step(liwc, env)
        assert liwc.e1_deg < e1_before - 3.0


class TestWorkloadSpike:
    def test_scene_spike_shifts_balance_down(self):
        """Local rendering becomes 3x costlier: offload more (smaller e1)."""
        env = _DynamicEnv()
        liwc = LIWC(LIWCConfig(deadband_ms=0.1))
        for _ in range(120):
            _step(liwc, env)
        e1_before = liwc.e1_deg
        env.local_slope = 0.75
        for _ in range(150):
            _step(liwc, env)
        assert liwc.e1_deg < e1_before - 2.0


class TestNoiseRobustness:
    def test_stays_bounded_under_heavy_noise(self):
        env = _DynamicEnv()
        env.noise = 3.0
        liwc = LIWC()
        trajectory = []
        for _ in range(300):
            e1, _, _ = _step(liwc, env)
            trajectory.append(e1)
        assert all(5.0 <= e1 <= 90.0 for e1 in trajectory)
        # Despite noise, the time-average sits near the noise-free balance.
        noise_free = _DynamicEnv()
        clean = LIWC()
        for _ in range(300):
            _step(clean, noise_free)
        assert abs(np.mean(trajectory[150:]) - clean.e1_deg) < 20.0

    def test_deadband_suppresses_hunting(self):
        """A wide deadband must produce fewer eccentricity changes."""
        def run(deadband):
            env = _DynamicEnv()
            env.noise = 0.3
            liwc = LIWC(LIWCConfig(deadband_ms=deadband))
            changes = 0
            prev = liwc.e1_deg
            for _ in range(250):
                _step(liwc, env)
                if liwc.e1_deg != prev:
                    changes += 1
                prev = liwc.e1_deg
            return changes

        assert run(deadband=2.0) <= run(deadband=0.01)


class TestExtremeInputs:
    def test_zero_triangles_frame(self):
        """An empty frame (scene load) must not crash or corrupt state."""
        liwc = LIWC()
        liwc.select(PoseDelta(), GazeDelta(), 0.0, 0.0, 0.0, 20_000.0)
        liwc.observe(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 20_000.0)
        assert 5.0 <= liwc.e1_deg <= 90.0

    def test_violent_motion_codes_valid(self):
        liwc = LIWC()
        wild = PoseDelta(dx=5, dy=-5, dz=5, dyaw=179, dpitch=-90, droll=45)
        saccade = GazeDelta(dx_px=1800, dy_px=-2000)
        e1 = liwc.select(wild, saccade, 5e6, 0.2, 2e6, 20_000.0)
        assert 5.0 <= e1 <= 90.0
