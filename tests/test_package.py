"""Package-level tests: public API surface, constants, error hierarchy."""

import pytest

import repro
from repro import constants, errors


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_surface(self):
        """The README quickstart names must exist and be callable."""
        assert callable(repro.run_comparison)
        assert callable(repro.speedup_over)
        assert callable(repro.make_system)
        assert callable(repro.get_app)

    def test_subpackage_exports_resolve(self):
        import repro.analysis as analysis
        import repro.codec as codec
        import repro.core as core
        import repro.energy as energy
        import repro.gpu as gpu
        import repro.graphics as graphics
        import repro.motion as motion
        import repro.network as network
        import repro.sim as sim
        import repro.workloads as workloads

        for module in (analysis, codec, core, energy, gpu, graphics, motion,
                       network, sim, workloads):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestConstants:
    def test_realtime_requirements(self):
        assert constants.MTP_LATENCY_REQUIREMENT_MS == 25.0
        assert constants.TARGET_FPS == 90.0
        assert constants.FRAME_BUDGET_MS == pytest.approx(1000.0 / 90.0)

    def test_sensor_and_display_latencies(self):
        assert constants.SENSOR_TRANSPORT_MS == 2.0
        assert constants.DISPLAY_SCANOUT_MS == 5.0

    def test_eccentricity_range(self):
        assert constants.MIN_ECCENTRICITY_DEG == 5.0
        assert constants.MAX_ECCENTRICITY_DEG == 90.0
        assert constants.CLASSIC_FOVEA_ECCENTRICITY_DEG == 5.0

    def test_uca_constants(self):
        assert constants.UCA_TILE_PX == 32
        assert constants.UCA_CYCLES_PER_TILE == 532
        assert constants.UCA_UNIT_COUNT == 2

    def test_mar_parameters_positive(self):
        assert constants.MAR_SLOPE_DEG_PER_DEG > 0
        assert constants.FOVEA_MAR_DEG > 0


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        for name in errors.__dict__:
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not errors.ReproError:
                if obj.__module__ == "repro.errors":
                    assert issubclass(obj, errors.ReproError), name

    def test_catchable_as_base(self):
        from repro.core.foveation import MARModel

        with pytest.raises(errors.ReproError):
            MARModel(slope=-1.0)
