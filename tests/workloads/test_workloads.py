"""Tests for app models, tethered apps, scene dynamics and generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.motion.traces import generate_trace
from repro.workloads.apps import APPS, TABLE3_ORDER, get_app
from repro.workloads.generator import WorkloadGenerator, generate_workloads
from repro.workloads.scene_model import InteractionModel, SceneComplexityModel
from repro.workloads.tethered import TABLE1_ORDER, TETHERED_APPS, get_tethered_app


class TestApps:
    def test_table3_complete(self):
        assert set(TABLE3_ORDER) == set(APPS)
        assert len(TABLE3_ORDER) == 7

    def test_table3_batch_counts(self):
        """Draw-batch counts are verbatim from Table 3."""
        expected = {
            "Doom3-H": 382, "Doom3-L": 382, "HL2-H": 656, "HL2-L": 656,
            "GRID": 3680, "UT3": 1752, "Wolf": 3394,
        }
        for name, batches in expected.items():
            assert APPS[name].draw_batches == batches

    def test_table3_resolutions(self):
        assert (APPS["Doom3-H"].width_px, APPS["Doom3-H"].height_px) == (1920, 2160)
        assert (APPS["Doom3-L"].width_px, APPS["Doom3-L"].height_px) == (1280, 1600)

    def test_table3_apis(self):
        assert APPS["Doom3-H"].api == "OpenGL"
        assert APPS["GRID"].api == "DirectX"

    def test_lookup_by_short_name(self):
        assert get_app("D3H") is APPS["Doom3-H"]
        assert get_app("gd") is APPS["GRID"]

    def test_unknown_app(self):
        with pytest.raises(WorkloadError):
            get_app("Quake")

    def test_full_workload_scales_with_complexity(self):
        app = get_app("UT3")
        light = app.full_workload(0.8)
        heavy = app.full_workload(1.2)
        assert heavy.fragments > light.fragments
        assert heavy.vertices > light.vertices

    def test_invalid_complexity(self):
        with pytest.raises(WorkloadError):
            get_app("UT3").full_workload(0.0)


class TestTetheredApps:
    def test_table1_complete(self):
        assert set(TABLE1_ORDER) == set(TETHERED_APPS)
        assert len(TABLE1_ORDER) == 5

    def test_table1_triangles(self):
        """Triangle counts are verbatim from Table 1."""
        assert TETHERED_APPS["Foveated3D"].triangles == pytest.approx(231e3)
        assert TETHERED_APPS["Viking"].triangles == pytest.approx(2.8e6)
        assert TETHERED_APPS["San Miguel"].triangles == pytest.approx(4.2e6)

    def test_f_ranges_match_table1(self):
        assert TETHERED_APPS["Foveated3D"].f_range == (0.16, 0.52)
        assert TETHERED_APPS["Nature"].f_range == (0.10, 0.24)

    def test_interactive_fraction_bounds(self):
        app = TETHERED_APPS["Nature"]
        assert app.interactive_fraction(0.0) == pytest.approx(app.f_range[0])
        assert app.interactive_fraction(1.0) == pytest.approx(app.f_range[1])

    def test_fig5_nature_latency_span(self):
        """Fig. 5: the tree costs ~12 ms far away and ~26 ms up close."""
        app = TETHERED_APPS["Nature"]
        assert app.interactive_latency_ms(0.0) == pytest.approx(11.0, abs=1.5)
        assert app.interactive_latency_ms(1.0) == pytest.approx(26.4, abs=1.5)

    def test_closeness_monotone(self):
        app = TETHERED_APPS["Foveated3D"]
        values = [app.interactive_latency_ms(c) for c in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert values == sorted(values)

    def test_invalid_closeness(self):
        with pytest.raises(WorkloadError):
            TETHERED_APPS["Nature"].interactive_fraction(1.5)

    def test_unknown_tethered_app(self):
        with pytest.raises(WorkloadError):
            get_tethered_app("Minecraft")


class TestSceneComplexity:
    def _trace(self, n=200, seed=0):
        return generate_trace(n, 11.1, 1920, 2160, seed=seed)

    def test_multiplier_clamped(self):
        model = SceneComplexityModel(1920, 2160, seed=1)
        for sample in self._trace():
            value = model.step(sample)
            assert model.lo <= value <= model.hi

    def test_hotspot_density_in_unit_range(self):
        model = SceneComplexityModel(1920, 2160, seed=2)
        rng = np.random.default_rng(0)
        for _ in range(100):
            d = model.hotspot_density(rng.uniform(0, 1920), rng.uniform(0, 2160))
            assert 0.0 <= d <= 1.0

    def test_complexity_correlates_with_gaze_position(self):
        """Fig. 8's premise: where the user looks determines workload.

        With the activity and animation-noise terms silenced, the
        multiplier must be a deterministic function of hotspot density
        under the gaze (near-perfect correlation).
        """
        model = SceneComplexityModel(
            1920, 2160, seed=3, noise_sigma=0.0, activity_gain=0.0
        )
        trace = self._trace(400, seed=3)
        complexities = np.array([model.step(s) for s in trace])
        densities = np.array(
            [model.hotspot_density(s.gaze.x_px, s.gaze.y_px) for s in trace]
        )
        corr = np.corrcoef(complexities, densities)[0, 1]
        assert corr > 0.95

    def test_activity_raises_complexity(self):
        """The motion coupling of Fig. 8: faster heads, heavier frames."""
        from repro.motion.dof import Pose
        from repro.motion.traces import MotionSample
        from repro.motion.dof import GazePoint

        model = SceneComplexityModel(
            1920, 2160, seed=4, noise_sigma=0.0, hotspot_gain=0.0
        )
        still = MotionSample(0, 0.0, Pose(), GazePoint(960, 1080), activity=0.0)
        moving = MotionSample(1, 11.0, Pose(), GazePoint(960, 1080), activity=1.0)
        assert model.step(moving) > model.step(still)

    def test_invalid_config(self):
        with pytest.raises(WorkloadError):
            SceneComplexityModel(0, 100)
        with pytest.raises(WorkloadError):
            SceneComplexityModel(100, 100, lo=2.0, hi=1.0)


class TestInteractionModel:
    def test_closeness_in_unit_range(self):
        model = InteractionModel(seed=0)
        values = [model.step() for _ in range(500)]
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_mean_reversion(self):
        model = InteractionModel(mean_closeness=0.4, seed=1)
        values = [model.step() for _ in range(2000)]
        assert np.mean(values[500:]) == pytest.approx(0.4, abs=0.08)

    def test_temporal_correlation(self):
        model = InteractionModel(seed=2)
        values = np.array([model.step() for _ in range(1000)])
        corr = np.corrcoef(values[:-1], values[1:])[0, 1]
        assert corr > 0.8

    def test_invalid_config(self):
        with pytest.raises(WorkloadError):
            InteractionModel(mean_closeness=2.0)
        with pytest.raises(WorkloadError):
            InteractionModel(correlation_frames=0)


class TestWorkloadGenerator:
    def test_deterministic(self):
        a = generate_workloads(get_app("HL2-H"), 50, seed=9)
        b = generate_workloads(get_app("HL2-H"), 50, seed=9)
        assert all(
            x.complexity == y.complexity and x.full.fragments == y.full.fragments
            for x, y in zip(a, b)
        )

    def test_interactive_fraction_in_app_range(self):
        app = get_app("GRID")
        lo, hi = app.interactive_fraction_range
        for frame in generate_workloads(app, 200, seed=4):
            assert lo - 1e-9 <= frame.interactive_fraction <= hi + 1e-9

    def test_content_complexity_propagated(self):
        app = get_app("Wolf")
        frames = generate_workloads(app, 10, seed=0)
        assert all(f.content_complexity == app.content_complexity for f in frames)

    def test_trace_matches_frames(self):
        gen = WorkloadGenerator(get_app("UT3"), seed=5)
        frames = gen.generate(25)
        trace = gen.trace(25)
        assert [f.motion.gaze for f in frames] == [s.gaze for s in trace]

    def test_complexity_varies(self):
        frames = generate_workloads(get_app("GRID"), 200, seed=6)
        values = {round(f.complexity, 6) for f in frames}
        assert len(values) > 50

    def test_invalid_arguments(self):
        with pytest.raises(WorkloadError):
            WorkloadGenerator(get_app("UT3"), frame_dt_ms=0.0)
        with pytest.raises(WorkloadError):
            WorkloadGenerator(get_app("UT3")).generate(-1)

    @given(st.integers(min_value=0, max_value=60))
    @settings(max_examples=10, deadline=None)
    def test_generate_length(self, n):
        assert len(generate_workloads(get_app("Doom3-L"), n, seed=0)) == n
