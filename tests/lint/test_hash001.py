"""HASH001 — spec-hash coverage, on synthetic fixtures and the real tree.

The headline test copies the real spec modules plus ``repro-lint.toml``
into a scratch tree, appends a throwaway field to ``RunSpec`` without
touching any ledger, and asserts the lint run fails — exactly the
accident (a silent mass cache-key change) the rule exists to catch.
"""

from __future__ import annotations

import shutil
import textwrap
from pathlib import Path

from repro.lint import LintConfig, all_rule_codes, lint_paths, load_config

REPO = Path(__file__).resolve().parents[2]

#: Everything HASH001 needs from the real tree: the spec module holding
#: the strip tables, the other hashed-dataclass modules, and the ledger.
_REAL_FILES = (
    "src/repro/sim/runner.py",
    "src/repro/sim/systems.py",
    "src/repro/network/conditions.py",
    "repro-lint.toml",
)


def _copy_real_tree(tmp_path: Path) -> None:
    for rel in _REAL_FILES:
        dest = tmp_path / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(REPO / rel, dest)


def _lint_runner(tmp_path: Path):
    config = load_config(tmp_path / "src")
    assert config.source == tmp_path / "repro-lint.toml"
    return lint_paths([tmp_path / "src" / "repro" / "sim" / "runner.py"],
                      config=config)


def test_real_ledger_is_clean(tmp_path):
    _copy_real_tree(tmp_path)
    result = _lint_runner(tmp_path)
    assert result.ok, [str(f) for f in result.unsuppressed]


def test_throwaway_runspec_field_fails_lint(tmp_path):
    _copy_real_tree(tmp_path)
    runner = tmp_path / "src" / "repro" / "sim" / "runner.py"
    text = runner.read_text(encoding="utf-8")
    anchor = '    engine: str = "vector"\n'
    assert anchor in text
    runner.write_text(
        text.replace(anchor, anchor + "    throwaway_knob: int = 0\n"),
        encoding="utf-8",
    )
    result = _lint_runner(tmp_path)
    hits = [f for f in result.unsuppressed if f.rule == "HASH001"]
    assert len(hits) == 1
    assert "RunSpec.throwaway_knob" in hits[0].message
    assert "_NEUTRAL_FIELDS" in hits[0].message


def _mini_project(tmp_path: Path, spec_body: str, model_body: str) -> LintConfig:
    (tmp_path / "spec.py").write_text(textwrap.dedent(spec_body), encoding="utf-8")
    (tmp_path / "model.py").write_text(textwrap.dedent(model_body), encoding="utf-8")
    rules = {c: {"enabled": False} for c in all_rule_codes()}
    rules["HASH001"] = {
        "enabled": True,
        "module": "spec.py",
        "dataclasses": {"Model": {"module": "model.py", "baseline": ["kept"]}},
    }
    return LintConfig(root=tmp_path, rules=rules)


_SPEC = """
    _NEUTRAL_FIELDS = {"Model": {"added_later": None}}
    _EXECUTION_FIELDS = {"Model": frozenset({"engine"})}
    """

_MODEL = """
    class Model:
        kept: int = 0
        added_later: str | None = None
        engine: str = "vector"
    """


def test_synthetic_fully_ledgered_model_is_clean(tmp_path):
    config = _mini_project(tmp_path, _SPEC, _MODEL)
    result = lint_paths([tmp_path / "model.py"], config=config)
    assert result.ok, [str(f) for f in result.unsuppressed]


def test_synthetic_unledgered_field_is_flagged(tmp_path):
    config = _mini_project(
        tmp_path, _SPEC, _MODEL + "    sneaky: float = 1.0\n"
    )
    result = lint_paths([tmp_path / "model.py"], config=config)
    hits = [f for f in result.unsuppressed if f.rule == "HASH001"]
    assert len(hits) == 1 and "Model.sneaky" in hits[0].message


def test_synthetic_stale_ledger_entries_are_flagged(tmp_path):
    stale_spec = """
        _NEUTRAL_FIELDS = {"Model": {"added_later": None, "gone": None}}
        _EXECUTION_FIELDS = {"Model": frozenset({"engine", "vanished"})}
        """
    config = _mini_project(tmp_path, stale_spec, _MODEL)
    result = lint_paths([tmp_path / "model.py"], config=config)
    messages = [f.message for f in result.unsuppressed if f.rule == "HASH001"]
    assert len(messages) == 2
    assert any("Model.gone" in m for m in messages)
    assert any("Model.vanished" in m for m in messages)
