"""Framework-level behaviour: suppressions, reserved codes, config errors."""

from __future__ import annotations

import textwrap

import pytest

from repro.errors import ConfigurationError
from repro.lint import LintConfig, all_rule_codes, lint_paths


def test_all_rule_codes_cover_the_advertised_ruleset():
    codes = set(all_rule_codes())
    assert {
        "DET001", "DET002", "DET003", "DET004", "DET005", "HASH001", "MP001",
    } <= codes


def test_unused_suppression_is_a_finding(run_rule):
    result = run_rule(
        """
        x = 1  # repro-lint: disable=DET001 -- nothing here to suppress
        """,
        "DET001",
    )
    assert [f.rule for f in result.unsuppressed] == ["LINT001"]
    assert "unused suppression" in result.unsuppressed[0].message


def test_malformed_marker_is_a_finding(run_rule):
    result = run_rule(
        """
        x = 1  # repro-lint: enable=DET001
        """,
        "DET001",
    )
    assert [f.rule for f in result.unsuppressed] == ["LINT001"]
    assert "malformed" in result.unsuppressed[0].message


def test_syntax_error_reports_parse_error_finding(run_rule):
    result = run_rule(
        """
        def broken(:
            pass
        """,
        "DET001",
    )
    assert [f.rule for f in result.unsuppressed] == ["LINT002"]


def test_one_comment_can_disable_multiple_rules(tmp_path):
    code = """
        import random
        import time

        # repro-lint: disable=DET001,DET002 -- demo site exercising both rules
        x = (random.random(), time.time())
        """
    path = tmp_path / "multi.py"
    path.write_text(textwrap.dedent(code), encoding="utf-8")
    rules = {c: {"enabled": False} for c in all_rule_codes()}
    rules["DET001"] = {"enabled": True}
    rules["DET002"] = {"enabled": True}
    result = lint_paths([path], config=LintConfig(root=tmp_path, rules=rules))
    assert result.ok
    assert sorted(f.rule for f in result.suppressed) == ["DET001", "DET002"]


def test_trailing_suppression_does_not_cover_other_lines(run_rule):
    result = run_rule(
        """
        import random

        a = random.random()  # repro-lint: disable=DET001 -- first draw is sanctioned
        b = random.random()
        """,
        "DET001",
    )
    assert [f.rule for f in result.unsuppressed] == ["DET001"]
    assert [f.rule for f in result.suppressed] == ["DET001"]


def test_unknown_rule_code_in_config_is_an_error(tmp_path):
    (tmp_path / "mod.py").write_text("x = 1\n", encoding="utf-8")
    config = LintConfig(root=tmp_path, rules={"NOPE999": {}})
    with pytest.raises(ConfigurationError, match="NOPE999"):
        lint_paths([tmp_path / "mod.py"], config=config)


def test_missing_target_is_an_error(tmp_path):
    config = LintConfig(root=tmp_path)
    with pytest.raises(ConfigurationError, match="does not exist"):
        lint_paths([tmp_path / "ghost.py"], config=config)


def test_findings_are_deterministically_ordered(run_rule):
    result = run_rule(
        """
        import random
        import time

        b = time.time()
        a = random.random()
        """,
        "DET002",
    )
    positions = [(f.line, f.col) for f in result.findings]
    assert positions == sorted(positions)
