"""Shared fixtures for the ``repro lint`` test suite."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import LintConfig, all_rule_codes, lint_paths


@pytest.fixture
def run_rule(tmp_path):
    """Lint a snippet with exactly one rule enabled.

    Every other registered rule is disabled so fixtures exercise one
    invariant at a time; ``options`` merges into the rule's TOML options
    (``paths`` omitted means the rule applies everywhere under the tmp
    root).  Returns the :class:`repro.lint.LintResult`.
    """

    def _run(code, rule, options=None, filename="mod.py"):
        path = tmp_path / filename
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(code), encoding="utf-8")
        rules = {c: {"enabled": False} for c in all_rule_codes()}
        rules[rule] = {"enabled": True, **(options or {})}
        config = LintConfig(root=tmp_path, rules=rules)
        return lint_paths([path], config=config)

    return _run
