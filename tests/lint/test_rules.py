"""Fixture-snippet tests for the determinism rules (DET001–DET005, MP001).

Every rule gets the same triple: a snippet it must flag, a clean snippet
it must stay silent on, and a suppressed snippet where a justified
``# repro-lint: disable=...`` comment silences the finding without
hiding it from the suppressed list.
"""

from __future__ import annotations


def _codes(result):
    return [f.rule for f in result.unsuppressed]


# ---------------------------------------------------------------------------
# DET001 — unseeded / process-global RNG
# ---------------------------------------------------------------------------


def test_det001_flags_global_random_module(run_rule):
    result = run_rule(
        """
        import random

        def draw():
            return random.random()
        """,
        "DET001",
    )
    assert _codes(result) == ["DET001"]
    assert "process-global RNG" in result.unsuppressed[0].message


def test_det001_flags_numpy_module_level_state(run_rule):
    result = run_rule(
        """
        import numpy as np

        np.random.seed(0)
        x = np.random.rand(3)
        """,
        "DET001",
    )
    assert _codes(result) == ["DET001", "DET001"]


def test_det001_flags_unseeded_default_rng(run_rule):
    result = run_rule(
        """
        from numpy.random import default_rng

        gen = default_rng()
        """,
        "DET001",
    )
    assert _codes(result) == ["DET001"]
    assert "without a seed" in result.unsuppressed[0].message


def test_det001_clean_on_seeded_generators(run_rule):
    result = run_rule(
        """
        import random

        import numpy as np

        def make(seed):
            return np.random.default_rng(seed), random.Random(seed)
        """,
        "DET001",
    )
    assert result.ok
    assert result.findings == []


def test_det001_suppression_silences_with_justification(run_rule):
    result = run_rule(
        """
        import random

        token = random.getrandbits(64)  # repro-lint: disable=DET001 -- one-off id, never enters results
        """,
        "DET001",
    )
    assert result.ok
    assert [f.rule for f in result.suppressed] == ["DET001"]
    assert result.suppressed[0].justification == "one-off id, never enters results"


# ---------------------------------------------------------------------------
# DET002 — wall-clock reads
# ---------------------------------------------------------------------------


def test_det002_flags_time_module_clocks(run_rule):
    result = run_rule(
        """
        import time

        start = time.time()
        tick = time.perf_counter()
        """,
        "DET002",
    )
    assert _codes(result) == ["DET002", "DET002"]


def test_det002_flags_from_imports_and_datetime(run_rule):
    result = run_rule(
        """
        from datetime import datetime
        from time import perf_counter

        def stamp():
            return datetime.now(), perf_counter()
        """,
        "DET002",
    )
    assert _codes(result) == ["DET002", "DET002"]


def test_det002_clean_on_non_clock_uses(run_rule):
    result = run_rule(
        """
        import time

        def pause():
            time.sleep(0.01)
        """,
        "DET002",
    )
    assert result.ok and result.findings == []


def test_det002_standalone_suppression_covers_next_line(run_rule):
    result = run_rule(
        """
        import time

        def elapsed():
            # repro-lint: disable=DET002 -- reporting-only wall time
            return time.perf_counter()
        """,
        "DET002",
    )
    assert result.ok
    assert [f.rule for f in result.suppressed] == ["DET002"]


def test_det002_sanctioned_path_is_exempt(run_rule):
    result = run_rule(
        """
        import time

        def wall_s():
            return time.time()
        """,
        "DET002",
        options={"sanctioned_paths": ["obs/clock.py"]},
        filename="obs/clock.py",
    )
    assert result.ok and result.findings == []
    assert result.suppressed == []


def test_det002_hint_appended_outside_sanctioned_paths(run_rule):
    result = run_rule(
        """
        import time

        now = time.time()
        """,
        "DET002",
        options={
            "sanctioned_paths": ["obs/clock.py"],
            "hint": "use repro.obs.clock instead",
        },
        filename="sim/hot.py",
    )
    assert _codes(result) == ["DET002"]
    assert result.findings[0].message.endswith("(use repro.obs.clock instead)")


# ---------------------------------------------------------------------------
# DET003 — set iteration feeding order-sensitive consumers
# ---------------------------------------------------------------------------


def test_det003_flags_for_loop_over_set(run_rule):
    result = run_rule(
        """
        def spawn(jobs):
            pending = set(jobs)
            for job in pending:
                print(job)
        """,
        "DET003",
    )
    assert _codes(result) == ["DET003"]
    assert "hash order" in result.unsuppressed[0].message


def test_det003_flags_join_and_list_of_set(run_rule):
    result = run_rule(
        """
        names = {"b", "a"}
        label = ",".join(names)
        ordered = list(names)
        """,
        "DET003",
    )
    assert _codes(result) == ["DET003", "DET003"]


def test_det003_clean_on_sorted_and_order_neutral_consumers(run_rule):
    result = run_rule(
        """
        names = {"b", "a"}
        label = ",".join(sorted(names))
        count = len(names)
        biggest = max(names)
        doubled = {n * 2 for n in names}
        has_short = any(len(n) == 1 for n in names)
        """,
        "DET003",
    )
    assert result.ok and result.findings == []


def test_det003_suppression(run_rule):
    result = run_rule(
        """
        hosts = {"a"}
        # repro-lint: disable=DET003 -- singleton by construction on this branch
        first = list(hosts)
        """,
        "DET003",
    )
    assert result.ok
    assert [f.rule for f in result.suppressed] == ["DET003"]


# ---------------------------------------------------------------------------
# DET004 — bitwise-hazard numpy ops in hot paths
# ---------------------------------------------------------------------------


def test_det004_flags_np_clip_in_hot_path(run_rule):
    result = run_rule(
        """
        import numpy as np

        def clamp(x):
            return np.clip(x, 0.0, 1.0)
        """,
        "DET004",
        options={"ops": ["clip", "where"]},
    )
    assert _codes(result) == ["DET004"]
    assert "bit-parity hot path" in result.unsuppressed[0].message


def test_det004_respects_configured_op_list(run_rule):
    result = run_rule(
        """
        import numpy as np

        grid = np.arange(10.0)
        """,
        "DET004",
        options={"ops": ["clip", "where"]},
    )
    assert result.ok and result.findings == []


def test_det004_scoped_to_configured_paths(run_rule):
    result = run_rule(
        """
        import numpy as np

        y = np.clip(1.5, 0.0, 1.0)
        """,
        "DET004",
        options={"ops": ["clip"], "paths": ["hot/**"]},
        filename="cold/mod.py",
    )
    assert result.ok and result.findings == []


def test_det004_suppression_documents_load_bearing_site(run_rule):
    result = run_rule(
        """
        import numpy as np

        # repro-lint: disable=DET004 -- load-bearing: lattice must come from arange accumulation
        grid = np.arange(0.0, 1.0, 0.1)
        """,
        "DET004",
        options={"ops": ["clip", "where", "arange"]},
    )
    assert result.ok
    assert [f.rule for f in result.suppressed] == ["DET004"]
    assert "load-bearing" in result.suppressed[0].justification


# ---------------------------------------------------------------------------
# DET005 — bare float accumulation in aggregator modules
# ---------------------------------------------------------------------------


def test_det005_flags_bare_sum_and_loop_accumulation(run_rule):
    result = run_rule(
        """
        def total(values):
            acc = 0.0
            for v in values:
                acc += v
            return acc + sum(values)
        """,
        "DET005",
    )
    assert _codes(result) == ["DET005", "DET005"]


def test_det005_clean_on_integer_counters(run_rule):
    result = run_rule(
        """
        def count(chunks):
            n = 0
            seen = 0
            for chunk in chunks:
                n += len(chunk)
                seen += 1
            return n, seen
        """,
        "DET005",
    )
    assert result.ok and result.findings == []


def test_det005_exempts_sanctioned_accumulator_classes(run_rule):
    result = run_rule(
        """
        class ExactMoments:
            def update(self, values):
                for v in values:
                    self.total += v
                return sum(values)
        """,
        "DET005",
        options={"exempt_classes": ["ExactMoments"]},
    )
    assert result.ok and result.findings == []


def test_det005_suppression(run_rule):
    result = run_rule(
        """
        def cdf(entries):
            # repro-lint: disable=DET005 -- deterministic tuple order; frozen sampling contract
            return sum(weight for _, weight in entries)
        """,
        "DET005",
    )
    assert result.ok
    assert [f.rule for f in result.suppressed] == ["DET005"]


# ---------------------------------------------------------------------------
# MP001 — fork-unsafety around worker entry points
# ---------------------------------------------------------------------------


def test_mp001_flags_mutable_default_argument(run_rule):
    result = run_rule(
        """
        def enqueue(job, queue=[]):
            queue.append(job)
            return queue
        """,
        "MP001",
    )
    assert _codes(result) == ["MP001"]
    assert "mutable default argument" in result.unsuppressed[0].message


def test_mp001_flags_worker_reachable_mutable_global(run_rule):
    result = run_rule(
        """
        _CACHE = {}

        def helper(key):
            return _CACHE.get(key)

        def worker(key):
            return helper(key)
        """,
        "MP001",
        options={"worker_entry_points": ["worker"]},
    )
    assert _codes(result) == ["MP001"]
    assert "_CACHE" in result.unsuppressed[0].message
    assert "helper()" in result.unsuppressed[0].message


def test_mp001_flags_global_statement_in_worker(run_rule):
    result = run_rule(
        """
        _JOBS = []

        def worker():
            global _JOBS
            _JOBS = []
        """,
        "MP001",
        options={"worker_entry_points": ["worker"]},
    )
    assert _codes(result) == ["MP001"]


def test_mp001_clean_when_state_is_not_worker_reachable(run_rule):
    result = run_rule(
        """
        _CACHE = {}

        def parent_only(key):
            return _CACHE.get(key)

        def worker(key, queue=None):
            return key
        """,
        "MP001",
        options={"worker_entry_points": ["worker"]},
    )
    assert result.ok and result.findings == []


def test_mp001_suppression(run_rule):
    result = run_rule(
        """
        _MEMO = {}

        def worker(key):
            # repro-lint: disable=MP001 -- pure memo: rebuilt entries are bit-identical
            return _MEMO.setdefault(key, key * 2)
        """,
        "MP001",
        options={"worker_entry_points": ["worker"]},
    )
    assert result.ok
    assert [f.rule for f in result.suppressed] == ["MP001"]
