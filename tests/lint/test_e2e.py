"""End-to-end: the shipped tree lints clean through the real CLI."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.lint import lint_paths, render_json, render_text

REPO = Path(__file__).resolve().parents[2]


def test_repro_lint_src_exits_zero(capsys):
    assert main(["lint", str(REPO / "src")]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_repro_lint_json_reports_clean_tree(capsys):
    assert main(["lint", str(REPO / "src"), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["summary"]["unsuppressed"] == 0
    assert payload["summary"]["suppressed"] > 0
    assert payload["files"] > 50


def test_every_suppression_in_the_tree_is_justified():
    result = lint_paths([REPO / "src"])
    assert result.ok
    unjustified = [f for f in result.suppressed if not f.justification]
    assert unjustified == [], [str(f) for f in unjustified]


def test_cli_exits_nonzero_on_findings(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nstamp = time.time()\n", encoding="utf-8")
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "DET002" in out and "bad.py" in out


def test_cli_explicit_config_flag(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nstamp = time.time()\n", encoding="utf-8")
    config = tmp_path / "custom.toml"
    config.write_text("[lint.rules.DET002]\nenabled = false\n", encoding="utf-8")
    assert main(["lint", str(bad), "--config", str(config)]) == 0
    capsys.readouterr()


def test_reporters_render_the_same_result(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nstamp = time.time()\n", encoding="utf-8")
    result = lint_paths([bad])
    text = render_text(result)
    payload = json.loads(render_json(result))
    assert "1 finding(s)" in text
    assert payload["summary"]["total"] == 1
    assert payload["findings"][0]["rule"] == "DET002"
