"""Tests for the GPU timing substrate: config, caches, raster, perf model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, WorkloadError
from repro.gpu.cache import CacheModel
from repro.gpu.config import GPUConfig, RemoteServerConfig
from repro.gpu.dram import DRAMModel, SCATTERED_EFFICIENCY, STREAMING_EFFICIENCY
from repro.gpu.mobile_gpu import MobileGPU
from repro.gpu.perf_model import GPUPerfModel, RenderWorkload
from repro.gpu.raster import RasterModel
from repro.gpu.remote_gpu import RemoteRenderer


class TestGPUConfig:
    def test_table2_defaults(self):
        cfg = GPUConfig()
        assert cfg.frequency_mhz == 500.0
        assert cfg.num_shaders == 8
        assert cfg.l1_kb == 16
        assert cfg.l2_kb == 256
        assert cfg.l2_ways == 8
        assert cfg.raster_tile_px == 16
        assert cfg.dram_bytes_per_cycle == 16
        assert cfg.dram_channels == 8

    def test_shading_rate_scales_with_frequency(self):
        base = GPUConfig()
        slow = base.at_frequency(250.0)
        assert slow.shading_rate_per_ms == pytest.approx(base.shading_rate_per_ms / 2)

    def test_at_frequency_preserves_other_fields(self):
        cfg = GPUConfig(num_shaders=4).at_frequency(300.0)
        assert cfg.num_shaders == 4
        assert cfg.frequency_mhz == 300.0

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            GPUConfig(frequency_mhz=0)
        with pytest.raises(ConfigurationError):
            GPUConfig(num_shaders=0)

    def test_dram_bandwidth(self):
        cfg = GPUConfig()
        # 16 B/cycle * 8 channels * 500 MHz = 64 GB/s.
        assert cfg.dram_bandwidth_bytes_per_ms == pytest.approx(64e6)


class TestRemoteServerConfig:
    def test_effective_speedup_superlinear_in_gpus(self):
        one = RemoteServerConfig(num_gpus=1)
        eight = RemoteServerConfig(num_gpus=8)
        assert eight.effective_speedup > one.effective_speedup

    def test_scaling_efficiency_penalty(self):
        ideal = RemoteServerConfig(num_gpus=8, scaling_efficiency=1.0)
        lossy = RemoteServerConfig(num_gpus=8, scaling_efficiency=0.8)
        assert lossy.effective_speedup < ideal.effective_speedup
        assert ideal.effective_speedup == pytest.approx(8 * ideal.per_gpu_speedup)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            RemoteServerConfig(num_gpus=0)
        with pytest.raises(ConfigurationError):
            RemoteServerConfig(scaling_efficiency=0.0)


class TestCacheModel:
    def test_tiny_working_set_fully_cached(self):
        cache = CacheModel(GPUConfig())
        traffic = cache.frame_traffic(1e6, 4.0, texture_working_set_bytes=1024)
        assert traffic.dram_bytes == pytest.approx(0.0, abs=1.0)
        assert traffic.l1_hit_rate == pytest.approx(1.0)

    def test_bigger_working_set_more_dram(self):
        cache = CacheModel(GPUConfig())
        small = cache.frame_traffic(1e6, 4.0, 8e6)
        large = cache.frame_traffic(1e6, 4.0, 64e6)
        assert large.dram_bytes > small.dram_bytes

    def test_bigger_l2_less_dram(self):
        small_l2 = CacheModel(GPUConfig(l2_kb=128))
        big_l2 = CacheModel(GPUConfig(l2_kb=1024))
        ws = 32e6
        assert big_l2.frame_traffic(1e6, 4.0, ws).dram_bytes < small_l2.frame_traffic(
            1e6, 4.0, ws
        ).dram_bytes

    def test_zero_fragments_no_traffic(self):
        cache = CacheModel(GPUConfig())
        traffic = cache.frame_traffic(0.0, 4.0, 32e6)
        assert traffic.fragment_requests_bytes == 0.0
        assert traffic.dram_bytes == 0.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheModel(GPUConfig()).frame_traffic(-1, 4.0, 32e6)


class TestRasterModel:
    def test_tiles_grow_with_triangle_area(self):
        raster = RasterModel(GPUConfig())
        small = raster.tiles_per_triangle(fragments=1e6, triangles=1e6)
        large = raster.tiles_per_triangle(fragments=100e6, triangles=1e6)
        assert large > small

    def test_zero_triangles(self):
        raster = RasterModel(GPUConfig())
        assert raster.tiles_per_triangle(1e6, 0) == 0.0
        assert raster.estimate(0, 0).total_cycles == 0.0

    def test_cycles_scale_with_triangles(self):
        raster = RasterModel(GPUConfig())
        one = raster.estimate(1e6, 10e6).total_cycles
        two = raster.estimate(2e6, 20e6).total_cycles
        assert two == pytest.approx(2 * one, rel=0.05)


class TestPerfModel:
    @pytest.fixture
    def perf(self):
        return GPUPerfModel(GPUConfig())

    @pytest.fixture
    def workload(self):
        return RenderWorkload(
            vertices=1e6, fragments=14e6, fragment_cycles=300.0, draw_batches=500.0
        )

    def test_time_positive(self, perf, workload):
        assert perf.render_time_ms(workload) > 0

    def test_monotone_in_fragments(self, perf, workload):
        heavier = workload.scaled(fragment_scale=2.0)
        assert perf.render_time_ms(heavier) > perf.render_time_ms(workload)

    def test_monotone_in_vertices(self, perf, workload):
        heavier = workload.scaled(vertex_scale=10.0)
        assert perf.render_time_ms(heavier) >= perf.render_time_ms(workload)

    def test_inverse_in_frequency(self, workload):
        fast = GPUPerfModel(GPUConfig(frequency_mhz=500))
        slow = GPUPerfModel(GPUConfig(frequency_mhz=250))
        assert slow.render_time_ms(workload) > fast.render_time_ms(workload)

    def test_frequency_scaling_near_linear_for_compute_bound(self, workload):
        fast = GPUPerfModel(GPUConfig(frequency_mhz=500))
        slow = GPUPerfModel(GPUConfig(frequency_mhz=250))
        ratio = slow.render_time_ms(workload) / fast.render_time_ms(workload)
        assert ratio == pytest.approx(2.0, rel=0.1)

    def test_batch_overhead_visible(self, perf):
        few = RenderWorkload(1e5, 1e6, 100.0, draw_batches=10)
        many = RenderWorkload(1e5, 1e6, 100.0, draw_batches=4000)
        delta = perf.frame_timing(many).batch_overhead_ms - perf.frame_timing(few).batch_overhead_ms
        assert delta > 1.0

    def test_breakdown_sums(self, perf, workload):
        timing = perf.frame_timing(workload)
        assert timing.total_ms >= max(timing.compute_ms, timing.dram_ms)
        assert timing.compute_ms == timing.geometry_ms + timing.fragment_ms

    def test_fast_path_equals_breakdown_exactly(self, perf):
        # render_time_ms is an inline replica of frame_timing().total_ms;
        # the two must agree to the last bit, including the degenerate
        # zero-vertex / fully-cached corners.
        cases = [
            RenderWorkload(1e6, 14e6, 300.0, 500.0),
            RenderWorkload(0.0, 0.0, 100.0, 10.0),
            RenderWorkload(1e5, 1e6, 100.0, 4000.0),
            RenderWorkload(1e6, 14e6, 300.0, 500.0, texture_working_set_bytes=0.0),
            RenderWorkload(
                1e3, 30e6, 1.0, 1.0,
                texture_bytes_per_fragment=64.0,
                texture_working_set_bytes=512e6,
            ),
        ]
        for wl in cases:
            assert perf.render_time_ms(wl) == perf.frame_timing(wl).total_ms

    @given(
        st.floats(min_value=0.0, max_value=5e6),
        st.floats(min_value=0.0, max_value=50e6),
        st.floats(min_value=0.0, max_value=1000.0),
        st.floats(min_value=0.0, max_value=5000.0),
    )
    @settings(max_examples=50)
    def test_fast_path_equals_breakdown_property(
        self, vertices, fragments, cycles, batches
    ):
        perf = GPUPerfModel(GPUConfig())
        wl = RenderWorkload(vertices, fragments, cycles, batches)
        assert perf.render_time_ms(wl) == perf.frame_timing(wl).total_ms

    def test_memory_bound_detection(self, perf):
        streamer = RenderWorkload(
            vertices=1e3, fragments=30e6, fragment_cycles=1.0,
            draw_batches=1.0, texture_bytes_per_fragment=64.0,
            texture_working_set_bytes=512e6,
        )
        assert perf.frame_timing(streamer).memory_bound

    def test_throughput_eq2_quantity(self, perf, workload):
        throughput = perf.throughput_triangles_per_ms(workload)
        assert throughput == pytest.approx(
            workload.vertices / perf.render_time_ms(workload)
        )

    def test_invalid_workload(self):
        with pytest.raises(WorkloadError):
            RenderWorkload(-1, 0, 0, 0)

    @given(st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=30)
    def test_scaled_workload_never_slower(self, scale):
        perf = GPUPerfModel(GPUConfig())
        full = RenderWorkload(1e6, 14e6, 300.0, 500.0)
        partial = full.scaled(fragment_scale=scale, vertex_scale=scale)
        assert perf.render_time_ms(partial) <= perf.render_time_ms(full) * (1 + 1e-9)


class TestMobileGPUPostPasses:
    def test_atw_cost_scales_with_pixels(self):
        gpu = MobileGPU()
        assert gpu.atw_cost(8e6).total_ms > gpu.atw_cost(2e6).total_ms

    def test_static_composition_heavier_than_foveated(self):
        gpu = MobileGPU()
        px = 8e6
        assert gpu.static_composition_cost(px).total_ms > gpu.foveated_composition_cost(px).total_ms

    def test_preemption_penalty_included(self):
        gpu = MobileGPU()
        cost = gpu.atw_cost(1e6)
        assert cost.total_ms >= cost.preemption_ms

    def test_negative_pixels_rejected(self):
        with pytest.raises(WorkloadError):
            MobileGPU().atw_cost(-1)


class TestDRAMModel:
    def test_streaming_faster_than_scattered(self):
        dram = DRAMModel(GPUConfig())
        assert dram.transfer_ms(1e6, STREAMING_EFFICIENCY) < dram.transfer_ms(
            1e6, SCATTERED_EFFICIENCY
        )

    def test_invalid_efficiency(self):
        with pytest.raises(ConfigurationError):
            DRAMModel(GPUConfig()).transfer_ms(1e6, 0.0)

    def test_zero_traffic(self):
        assert DRAMModel(GPUConfig()).transfer_ms(0.0) == 0.0


class TestRemoteRenderer:
    def test_server_much_faster_than_mobile(self):
        remote = RemoteRenderer()
        wl = RenderWorkload(1e6, 14e6, 300.0, 500.0)
        mobile_time = GPUPerfModel(GPUConfig()).render_time_ms(wl)
        assert remote.render_time_ms(wl) < mobile_time / 10

    def test_encode_time_linear(self):
        remote = RemoteRenderer()
        assert remote.encode_time_ms(5e6) == pytest.approx(2 * remote.encode_time_ms(2.5e6))

    def test_negative_pixels_rejected(self):
        with pytest.raises(WorkloadError):
            RemoteRenderer().encode_time_ms(-1)


class TestAppCalibration:
    """The Table 3 titles must reproduce the paper's workload spread."""

    def test_grid_is_heaviest(self):
        from repro.workloads.apps import APPS

        gpu = MobileGPU()
        times = {
            name: gpu.render_time_ms(app.full_workload())
            for name, app in APPS.items()
        }
        assert max(times, key=times.get) == "GRID"
        assert min(times, key=times.get) == "Doom3-L"

    def test_full_frame_times_in_calibrated_band(self):
        from repro.workloads.apps import APPS

        gpu = MobileGPU()
        for app in APPS.values():
            time_ms = gpu.render_time_ms(app.full_workload())
            assert 10.0 < time_ms < 160.0, app.name

    def test_low_res_variants_faster(self):
        from repro.workloads.apps import get_app

        gpu = MobileGPU()
        assert gpu.render_time_ms(
            get_app("Doom3-L").full_workload()
        ) < gpu.render_time_ms(get_app("Doom3-H").full_workload())
